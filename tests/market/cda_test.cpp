#include "market/cda.h"

#include <gtest/gtest.h>

#include "mechanism/properties.h"
#include "market/zi_traders.h"

namespace fnda {
namespace {

TEST(CdaTest, RestingOrderThenCross) {
  ContinuousDoubleAuction book;
  EXPECT_FALSE(book.submit(Side::kSeller, IdentityId{1}, money(5), SimTime{0})
                   .has_value());
  EXPECT_EQ(book.best_ask(), money(5));
  EXPECT_FALSE(book.best_bid().has_value());

  const auto trade =
      book.submit(Side::kBuyer, IdentityId{2}, money(7), SimTime{1});
  ASSERT_TRUE(trade.has_value());
  // Trades at the RESTING order's price, not the aggressive limit.
  EXPECT_EQ(trade->price, money(5));
  EXPECT_EQ(trade->buyer, IdentityId{2});
  EXPECT_EQ(trade->seller, IdentityId{1});
  EXPECT_EQ(book.open_asks(), 0u);
  EXPECT_EQ(book.trades().size(), 1u);
}

TEST(CdaTest, NonCrossingOrdersRest) {
  ContinuousDoubleAuction book;
  book.submit(Side::kBuyer, IdentityId{1}, money(4), SimTime{0});
  book.submit(Side::kSeller, IdentityId{2}, money(6), SimTime{1});
  EXPECT_EQ(book.open_bids(), 1u);
  EXPECT_EQ(book.open_asks(), 1u);
  EXPECT_EQ(book.best_bid(), money(4));
  EXPECT_EQ(book.best_ask(), money(6));
  EXPECT_FALSE(book.crossed());
  EXPECT_TRUE(book.trades().empty());
}

TEST(CdaTest, PricePriority) {
  ContinuousDoubleAuction book;
  book.submit(Side::kSeller, IdentityId{1}, money(6), SimTime{0});
  book.submit(Side::kSeller, IdentityId{2}, money(4), SimTime{1});
  const auto trade =
      book.submit(Side::kBuyer, IdentityId{3}, money(10), SimTime{2});
  ASSERT_TRUE(trade.has_value());
  EXPECT_EQ(trade->seller, IdentityId{2});  // cheaper ask wins
  EXPECT_EQ(trade->price, money(4));
}

TEST(CdaTest, TimePriorityWithinPriceLevel) {
  ContinuousDoubleAuction book;
  book.submit(Side::kSeller, IdentityId{1}, money(5), SimTime{0});
  book.submit(Side::kSeller, IdentityId{2}, money(5), SimTime{1});
  const auto trade =
      book.submit(Side::kBuyer, IdentityId{3}, money(5), SimTime{2});
  ASSERT_TRUE(trade.has_value());
  EXPECT_EQ(trade->seller, IdentityId{1});  // first in, first matched
}

TEST(CdaTest, ResubmitLosesTimePriority) {
  ContinuousDoubleAuction book;
  book.submit(Side::kSeller, IdentityId{1}, money(5), SimTime{0});
  book.submit(Side::kSeller, IdentityId{2}, money(5), SimTime{1});
  // Identity 1 re-quotes at the same price: goes to the back of the queue.
  book.submit(Side::kSeller, IdentityId{1}, money(5), SimTime{2});
  EXPECT_EQ(book.open_asks(), 2u);
  const auto trade =
      book.submit(Side::kBuyer, IdentityId{3}, money(9), SimTime{3});
  ASSERT_TRUE(trade.has_value());
  EXPECT_EQ(trade->seller, IdentityId{2});
}

TEST(CdaTest, CancelRemovesOrder) {
  ContinuousDoubleAuction book;
  book.submit(Side::kBuyer, IdentityId{1}, money(5), SimTime{0});
  EXPECT_TRUE(book.cancel(IdentityId{1}));
  EXPECT_EQ(book.open_bids(), 0u);
  EXPECT_FALSE(book.cancel(IdentityId{1}));
  EXPECT_FALSE(book.cancel(IdentityId{99}));
}

TEST(CdaTest, SellerHittingRestingBidTradesAtBidPrice) {
  ContinuousDoubleAuction book;
  book.submit(Side::kBuyer, IdentityId{1}, money(8), SimTime{0});
  const auto trade =
      book.submit(Side::kSeller, IdentityId{2}, money(3), SimTime{1});
  ASSERT_TRUE(trade.has_value());
  EXPECT_EQ(trade->price, money(8));
  EXPECT_EQ(trade->buyer, IdentityId{1});
}

TEST(CdaTest, ExactPriceTouchTrades) {
  ContinuousDoubleAuction book;
  book.submit(Side::kSeller, IdentityId{1}, money(5), SimTime{0});
  const auto trade =
      book.submit(Side::kBuyer, IdentityId{2}, money(5), SimTime{1});
  EXPECT_TRUE(trade.has_value());
}

TEST(ZiSessionTest, ExtractsMostOfTheSurplus) {
  // Gode-Sunder: budget-constrained zero-intelligence traders in a CDA
  // reach high allocative efficiency.  Average over instances.
  InstanceSpec spec;
  spec.min_buyers = 10;
  spec.max_buyers = 10;
  spec.min_sellers = 10;
  spec.max_sellers = 10;
  Rng rng(0x21c);
  double total_efficiency = 0.0;
  int counted = 0;
  for (int run = 0; run < 60; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    Rng session_rng = rng.split();
    const ZiSessionResult result = run_zi_session(instance, session_rng);
    if (result.efficient_surplus <= 0.0) continue;
    total_efficiency += result.efficiency;
    ++counted;
    EXPECT_GE(result.surplus, -1e-9);
    EXPECT_LE(result.surplus, result.efficient_surplus + 1e-9);
  }
  ASSERT_GT(counted, 30);
  EXPECT_GT(total_efficiency / counted, 0.85);
}

TEST(ZiSessionTest, NoFeasibleTradeMeansNoTrades) {
  SingleUnitInstance instance;
  instance.buyer_values = {money(10), money(20)};
  instance.seller_values = {money(80), money(90)};
  Rng rng(3);
  const ZiSessionResult result = run_zi_session(instance, rng);
  EXPECT_EQ(result.trades, 0u);
  EXPECT_DOUBLE_EQ(result.surplus, 0.0);
  EXPECT_DOUBLE_EQ(result.efficiency, 1.0);  // nothing achievable
}

TEST(ZiSessionTest, TradesNeverLoseMoney) {
  // ZI-C's budget constraint: every executed trade has buyer value >=
  // price >= seller value, so per-trade surplus is non-negative.
  InstanceSpec spec;
  spec.max_buyers = 8;
  spec.max_sellers = 8;
  Rng rng(0x21d);
  for (int run = 0; run < 40; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    Rng session_rng = rng.split();
    const ZiSessionResult result = run_zi_session(instance, session_rng);
    EXPECT_GE(result.surplus, -1e-9);
  }
}

TEST(ZiSessionTest, DeterministicGivenSeed) {
  SingleUnitInstance instance;
  instance.buyer_values = {money(60), money(70), money(80)};
  instance.seller_values = {money(20), money(30), money(40)};
  Rng a(5);
  Rng b(5);
  const ZiSessionResult ra = run_zi_session(instance, a);
  const ZiSessionResult rb = run_zi_session(instance, b);
  EXPECT_EQ(ra.trades, rb.trades);
  EXPECT_DOUBLE_EQ(ra.surplus, rb.surplus);
  EXPECT_DOUBLE_EQ(ra.mean_price, rb.mean_price);
}

}  // namespace
}  // namespace fnda
