#include "market/audit.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

TEST(AuditLogTest, AppendsAndCounts) {
  AuditLog log;
  log.append(SimTime{10}, RoundId{0}, AuditKind::kRoundOpened, "");
  log.append(SimTime{20}, RoundId{0}, AuditKind::kBidAccepted, "id-1 buyer@9");
  log.append(SimTime{20}, RoundId{0}, AuditKind::kBidAccepted, "id-2 seller@4");
  log.append(SimTime{30}, RoundId{0}, AuditKind::kRoundCleared, "1 trades");

  EXPECT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.count(AuditKind::kBidAccepted), 2u);
  EXPECT_EQ(log.count(AuditKind::kDepositConfiscated), 0u);
}

TEST(AuditLogTest, FiltersByRound) {
  AuditLog log;
  log.append(SimTime{1}, RoundId{0}, AuditKind::kRoundOpened, "");
  log.append(SimTime{2}, RoundId{1}, AuditKind::kRoundOpened, "");
  log.append(SimTime{3}, RoundId{1}, AuditKind::kRoundCleared, "");
  EXPECT_EQ(log.for_round(RoundId{0}).size(), 1u);
  EXPECT_EQ(log.for_round(RoundId{1}).size(), 2u);
  EXPECT_TRUE(log.for_round(RoundId{7}).empty());
}

TEST(AuditLogTest, DumpFormat) {
  AuditLog log;
  log.append(SimTime{12000}, RoundId{0}, AuditKind::kBidAccepted,
             "id-3 buyer@9");
  const std::string dump = log.dump();
  EXPECT_EQ(dump, "t=12000 round-0 bid-accepted id-3 buyer@9\n");
}

TEST(AuditLogTest, KindNames) {
  EXPECT_STREQ(to_string(AuditKind::kDeliveryFailed), "delivery-failed");
  EXPECT_STREQ(to_string(AuditKind::kDepositConfiscated),
               "deposit-confiscated");
  EXPECT_STREQ(to_string(AuditKind::kDepositRefunded), "deposit-refunded");
}

}  // namespace
}  // namespace fnda
