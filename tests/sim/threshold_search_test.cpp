#include "sim/threshold_search.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fnda {
namespace {

TEST(ThresholdSearchTest, ExpectedSurplusIsDeterministic) {
  const InstanceGenerator gen = fixed_count_generator(20, 20);
  const double a = expected_tpd_surplus(gen, money(50),
                                        ThresholdObjective::kTotalSurplus,
                                        50, 42);
  const double b = expected_tpd_surplus(gen, money(50),
                                        ThresholdObjective::kTotalSurplus,
                                        50, 42);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(ThresholdSearchTest, CenterBeatsExtremesForUniformValues) {
  // Figure 1: the surplus curve peaks near 50 for U[0,100] valuations.
  const InstanceGenerator gen = fixed_count_generator(30, 30);
  auto value_at = [&](double r) {
    return expected_tpd_surplus(gen, money(r),
                                ThresholdObjective::kTotalSurplus, 150, 7);
  };
  const double center = value_at(50);
  EXPECT_GT(center, value_at(10));
  EXPECT_GT(center, value_at(90));
  EXPECT_GT(center, value_at(30));
  EXPECT_GT(center, value_at(70));
}

TEST(ThresholdSearchTest, OptimizerFindsNearFifty) {
  ThresholdSearchConfig config;
  config.instances_per_eval = 150;
  config.coarse_points = 11;
  const ThresholdSearchResult result =
      optimize_threshold(fixed_count_generator(30, 30), config);
  EXPECT_NEAR(result.best_threshold.to_double(), 50.0, 8.0);
  EXPECT_GT(result.best_value, 0.0);
  EXPECT_EQ(result.sweep.size(), 11u);
}

TEST(ThresholdSearchTest, SweepCoversRequestedRange) {
  ThresholdSearchConfig config;
  config.lo = money(20);
  config.hi = money(80);
  config.coarse_points = 7;
  config.instances_per_eval = 30;
  const ThresholdSearchResult result =
      optimize_threshold(fixed_count_generator(10, 10), config);
  ASSERT_EQ(result.sweep.size(), 7u);
  EXPECT_EQ(result.sweep.front().first, money(20));
  EXPECT_EQ(result.sweep.back().first, money(80));
  for (std::size_t p = 1; p < result.sweep.size(); ++p) {
    EXPECT_LT(result.sweep[p - 1].first, result.sweep[p].first);
  }
}

TEST(ThresholdSearchTest, BestValueIsSweepMaximumOrBetter) {
  ThresholdSearchConfig config;
  config.instances_per_eval = 60;
  config.coarse_points = 9;
  const ThresholdSearchResult result =
      optimize_threshold(fixed_count_generator(15, 15), config);
  for (const auto& [r, value] : result.sweep) {
    EXPECT_GE(result.best_value, value);
  }
}

TEST(ThresholdSearchTest, ExceptAuctioneerObjectivePeaksNearCenterToo) {
  ThresholdSearchConfig config;
  config.objective = ThresholdObjective::kSurplusExceptAuctioneer;
  config.instances_per_eval = 100;
  config.coarse_points = 11;
  const ThresholdSearchResult result =
      optimize_threshold(fixed_count_generator(30, 30), config);
  EXPECT_NEAR(result.best_threshold.to_double(), 50.0, 10.0);
}

TEST(ThresholdSearchTest, RejectsBadConfig) {
  ThresholdSearchConfig config;
  config.lo = money(60);
  config.hi = money(40);
  EXPECT_THROW(optimize_threshold(fixed_count_generator(5, 5), config),
               std::invalid_argument);
  config.lo = money(0);
  config.hi = money(100);
  config.coarse_points = 1;
  EXPECT_THROW(optimize_threshold(fixed_count_generator(5, 5), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace fnda
