#include "sim/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace fnda {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"n", "TPD", "PMD"});
  table.add_row({"5", "103.4 (92.4%)", "105.9 (94.6%)"});
  table.add_row({"500", "12738.3 (99.9%)", "12745.5 (100.0%)"});
  const std::string out = table.to_string();

  std::istringstream lines(out);
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find('n'), 0u);
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
  EXPECT_NE(row2.find("12738.3 (99.9%)"), std::string::npos);
  // Columns align: "TPD" starts where the TPD cells start.
  EXPECT_EQ(header.find("TPD"), row1.find("103.4"));
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, StreamInsertion) {
  TextTable table({"x"});
  table.add_row({"y"});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.to_string());
  EXPECT_EQ(table.rows(), 1u);
}

TEST(FormatTest, FixedDecimals) {
  EXPECT_EQ(format_fixed(12738.31, 1), "12738.3");
  EXPECT_EQ(format_fixed(0.999, 1), "1.0");
  EXPECT_EQ(format_fixed(-3.14159, 2), "-3.14");
  EXPECT_EQ(format_fixed(5.0, 0), "5");
}

TEST(FormatTest, WithRatioMatchesPaperStyle) {
  EXPECT_EQ(format_with_ratio(103.4, 0.924), "103.4 (92.4%)");
  EXPECT_EQ(format_with_ratio(12745.5, 1.0), "12745.5 (100.0%)");
  EXPECT_EQ(format_with_ratio(84.4, 0.754), "84.4 (75.4%)");
}

}  // namespace
}  // namespace fnda
