#include "sim/adaptive_threshold.h"

#include <gtest/gtest.h>

#include "sim/generators.h"

namespace fnda {
namespace {

// SortedBook copies the book's entries, so returning it by value from a
// local OrderBook is safe.
SortedBook sorted_from(const SingleUnitInstance& instance, std::uint64_t seed) {
  OrderBook book(instance.domain);
  for (std::size_t i = 0; i < instance.buyer_values.size(); ++i) {
    book.add_buyer(IdentityId{i}, instance.buyer_values[i]);
  }
  for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
    book.add_seller(IdentityId{1000 + j}, instance.seller_values[j]);
  }
  Rng rng(seed);
  return SortedBook(book, rng);
}

TEST(AdaptiveThresholdTest, StartsAtInitial) {
  const AdaptiveThresholdPolicy policy(money(10));
  EXPECT_EQ(policy.current(), money(10));
  EXPECT_EQ(policy.observations(), 0u);
}

TEST(AdaptiveThresholdTest, RejectsBadSmoothing) {
  EXPECT_THROW(AdaptiveThresholdPolicy(money(50), 0.0),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveThresholdPolicy(money(50), 1.5),
               std::invalid_argument);
  EXPECT_NO_THROW(AdaptiveThresholdPolicy(money(50), 1.0));
}

TEST(AdaptiveThresholdTest, MovesTowardClearingMidpoint) {
  AdaptiveThresholdPolicy policy(money(10), 1.0);  // full weight on newest
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(5)};
  policy.observe(sorted_from(instance, 1));
  // k = 3: midpoint(b(3)=7, s(3)=4) = 5.5.
  EXPECT_EQ(policy.current(), money(5.5));
  EXPECT_EQ(policy.observations(), 1u);
}

TEST(AdaptiveThresholdTest, SmoothingBlends) {
  AdaptiveThresholdPolicy policy(money(10), 0.5);
  SingleUnitInstance instance;
  instance.buyer_values = {money(9)};
  instance.seller_values = {money(3)};
  policy.observe(sorted_from(instance, 1));
  // Target = midpoint(9, 3) = 6; blended: 0.5*10 + 0.5*6 = 8.
  EXPECT_EQ(policy.current(), money(8));
}

TEST(AdaptiveThresholdTest, IgnoresBooksWithoutCrossing) {
  AdaptiveThresholdPolicy policy(money(42), 1.0);
  SingleUnitInstance instance;
  instance.buyer_values = {money(1)};
  instance.seller_values = {money(9)};
  policy.observe(sorted_from(instance, 1));
  EXPECT_EQ(policy.current(), money(42));
  EXPECT_EQ(policy.observations(), 0u);
}

TEST(AdaptiveThresholdTest, ConvergesToFiftyOnUniformMarkets) {
  // Start far off (r = 5); after observing dozens of U[0,100] books the
  // policy should sit near the true optimum 50.
  AdaptiveThresholdPolicy policy(money(5), 0.25);
  const InstanceGenerator gen = fixed_count_generator(50, 50);
  Rng rng(0xada);
  for (int round = 0; round < 80; ++round) {
    const SingleUnitInstance instance = gen(rng);
    policy.observe(sorted_from(instance, rng()));
  }
  EXPECT_NEAR(policy.current().to_double(), 50.0, 5.0);
}

TEST(AdaptiveThresholdTest, WindowRetainsMostRecentBooks) {
  AdaptiveThresholdPolicy policy(money(50));
  EXPECT_EQ(policy.window_size(), 0u);
  policy.set_window_capacity(3);
  SingleUnitInstance instance;
  instance.buyer_values = {money(9)};
  instance.seller_values = {money(3)};
  for (int round = 0; round < 5; ++round) {
    policy.observe(sorted_from(instance, static_cast<std::uint64_t>(round)));
  }
  EXPECT_EQ(policy.window_size(), 3u);
  policy.set_window_capacity(1);  // shrinking evicts immediately
  EXPECT_EQ(policy.window_size(), 1u);
}

TEST(AdaptiveThresholdTest, RecalibrateJumpsToWindowArgmax) {
  // One book: buyers {9, 8}, sellers {2, 3}.  Any r in [3, 8] clears both
  // pairs for total surplus 12; r = 50 clears nothing.  The sweep must
  // pick a candidate inside the productive band.
  AdaptiveThresholdPolicy policy(money(50), 1.0);
  policy.set_window_capacity(4);
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8)};
  instance.seller_values = {money(2), money(3)};
  policy.observe(sorted_from(instance, 7));

  const std::vector<Money> candidates = {money(50), money(5), money(90)};
  const Money chosen = policy.recalibrate(candidates);
  EXPECT_EQ(chosen, money(5));
  EXPECT_EQ(policy.current(), money(5));

  // An empty candidate list leaves the threshold alone.
  EXPECT_EQ(policy.recalibrate({}), money(5));
}

TEST(AdaptiveThresholdTest, RecalibrateWithoutWindowIsANoOp) {
  AdaptiveThresholdPolicy policy(money(42));
  const std::vector<Money> candidates = {money(5), money(95)};
  EXPECT_EQ(policy.recalibrate(candidates), money(42));
}

TEST(AdaptiveThresholdTest, TracksShiftedDistributions) {
  // The whole point: no hand-tuning when the value distribution moves.
  AdaptiveThresholdPolicy policy(money(50), 0.3);
  const ValueDistribution low_market{money(0), money(40), ValueDomain{}};
  const InstanceGenerator gen = fixed_count_generator(40, 40, low_market);
  Rng rng(0xadb);
  for (int round = 0; round < 80; ++round) {
    const SingleUnitInstance instance = gen(rng);
    policy.observe(sorted_from(instance, rng()));
  }
  EXPECT_NEAR(policy.current().to_double(), 20.0, 4.0);
}

}  // namespace
}  // namespace fnda
