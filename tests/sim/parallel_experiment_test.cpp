#include <gtest/gtest.h>

#include "protocols/pmd.h"
#include "protocols/tpd.h"
#include "sim/experiment.h"

namespace fnda {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.instances = 123;  // not a multiple of the block count
  config.seed = 99;
  return config;
}

TEST(ParallelExperimentTest, ThreadCountDoesNotChangeResults) {
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const InstanceGenerator gen = fixed_count_generator(10, 10);
  const ExperimentConfig config = small_config();

  const ComparisonResult one =
      run_comparison_parallel(gen, {&tpd, &pmd}, config, 1);
  const ComparisonResult four =
      run_comparison_parallel(gen, {&tpd, &pmd}, config, 4);
  const ComparisonResult many =
      run_comparison_parallel(gen, {&tpd, &pmd}, config, 16);

  EXPECT_EQ(one.pareto.count(), 123u);
  // Bit-identical across thread counts: fixed block partition + counter
  // seeding.
  EXPECT_DOUBLE_EQ(one.pareto.mean(), four.pareto.mean());
  EXPECT_DOUBLE_EQ(one.pareto.variance(), four.pareto.variance());
  EXPECT_DOUBLE_EQ(one.summary("tpd").total.mean(),
                   four.summary("tpd").total.mean());
  EXPECT_DOUBLE_EQ(four.summary("pmd").total.mean(),
                   many.summary("pmd").total.mean());
  EXPECT_DOUBLE_EQ(one.summary("tpd").auctioneer.sum(),
                   many.summary("tpd").auctioneer.sum());
}

TEST(ParallelExperimentTest, StatisticallyConsistentWithSequential) {
  // Different draw order, same distribution: means agree within a few
  // standard errors.
  const TpdProtocol tpd(money(50));
  const InstanceGenerator gen = fixed_count_generator(20, 20);
  ExperimentConfig config;
  config.instances = 800;
  config.seed = 7;
  const ComparisonResult sequential = run_comparison(gen, {&tpd}, config);
  const ComparisonResult parallel =
      run_comparison_parallel(gen, {&tpd}, config, 4);
  const double sem = sequential.summary("tpd").total.sem() +
                     parallel.summary("tpd").total.sem();
  EXPECT_NEAR(sequential.summary("tpd").total.mean(),
              parallel.summary("tpd").total.mean(), 5.0 * sem);
}

TEST(ParallelExperimentTest, TinyWorkloads) {
  const TpdProtocol tpd(money(50));
  const InstanceGenerator gen = fixed_count_generator(3, 3);
  ExperimentConfig config;
  config.instances = 1;
  const ComparisonResult result =
      run_comparison_parallel(gen, {&tpd}, config, 8);
  EXPECT_EQ(result.pareto.count(), 1u);

  config.instances = 0;
  const ComparisonResult empty =
      run_comparison_parallel(gen, {&tpd}, config, 8);
  EXPECT_EQ(empty.pareto.count(), 0u);
}

TEST(ParallelExperimentTest, WorkerExceptionsPropagate) {
  // A generator that throws on one specific counter-derived draw.
  const TpdProtocol tpd(money(50));
  const InstanceGenerator bomb = [](Rng& rng) -> SingleUnitInstance {
    if (rng.below(40) == 0) throw std::runtime_error("boom");
    SingleUnitInstance instance;
    instance.buyer_values = {money(9)};
    instance.seller_values = {money(2)};
    return instance;
  };
  ExperimentConfig config;
  config.instances = 200;
  EXPECT_THROW(run_comparison_parallel(bomb, {&tpd}, config, 4),
               std::runtime_error);
}

}  // namespace
}  // namespace fnda
