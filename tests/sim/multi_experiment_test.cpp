#include "sim/multi_experiment.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

TEST(MultiExperimentTest, DrawRespectsWorkloadShape) {
  MultiUnitWorkload workload;
  workload.buyers = 7;
  workload.sellers = 3;
  workload.min_units = 2;
  workload.max_units = 5;
  Rng rng(1);
  const MultiUnitDraw draw = draw_multi_instance(workload, rng);
  EXPECT_EQ(draw.book.buyers().size(), 7u);
  EXPECT_EQ(draw.book.sellers().size(), 3u);
  for (const MultiUnitBid& bid : draw.book.buyers()) {
    EXPECT_GE(bid.marginal_values.size(), 2u);
    EXPECT_LE(bid.marginal_values.size(), 5u);
    for (std::size_t u = 1; u < bid.marginal_values.size(); ++u) {
      EXPECT_LE(bid.marginal_values[u], bid.marginal_values[u - 1]);
    }
  }
  EXPECT_EQ(draw.truth.buyer_values.size(), 7u);
  EXPECT_EQ(draw.truth.seller_values.size(), 3u);
}

TEST(MultiExperimentTest, RejectsBadUnitRange) {
  MultiUnitWorkload workload;
  workload.min_units = 0;
  Rng rng(1);
  EXPECT_THROW(draw_multi_instance(workload, rng), std::invalid_argument);
  workload.min_units = 5;
  workload.max_units = 2;
  EXPECT_THROW(draw_multi_instance(workload, rng), std::invalid_argument);
}

TEST(MultiExperimentTest, RunsAndBoundsRatios) {
  const TpdMultiUnitProtocol protocol(money(50));
  MultiUnitWorkload workload;
  workload.buyers = 12;
  workload.sellers = 12;
  const MultiExperimentResult result =
      run_multi_experiment(protocol, workload, 100, 77);
  EXPECT_EQ(result.total.count(), 100u);
  EXPECT_GT(result.ratio_total(), 0.9);
  EXPECT_LE(result.ratio_total(), 1.0 + 1e-9);
  EXPECT_LE(result.ratio_except_auctioneer(), result.ratio_total());
  EXPECT_GE(result.auctioneer.min(), -1e-9);
  EXPECT_GT(result.units.mean(), 1.0);
}

TEST(MultiExperimentTest, DeterministicGivenSeed) {
  const TpdMultiUnitProtocol protocol(money(50));
  MultiUnitWorkload workload;
  const MultiExperimentResult a =
      run_multi_experiment(protocol, workload, 50, 5);
  const MultiExperimentResult b =
      run_multi_experiment(protocol, workload, 50, 5);
  EXPECT_DOUBLE_EQ(a.total.mean(), b.total.mean());
  EXPECT_DOUBLE_EQ(a.pareto.mean(), b.pareto.mean());
}

TEST(MultiExperimentTest, EfficiencyRisesWithMarketSize) {
  const TpdMultiUnitProtocol protocol(money(50));
  MultiUnitWorkload small;
  small.buyers = 4;
  small.sellers = 4;
  MultiUnitWorkload large;
  large.buyers = 50;
  large.sellers = 50;
  const MultiExperimentResult a =
      run_multi_experiment(protocol, small, 200, 9);
  const MultiExperimentResult b =
      run_multi_experiment(protocol, large, 200, 9);
  EXPECT_GT(b.ratio_total(), a.ratio_total());
}

}  // namespace
}  // namespace fnda
