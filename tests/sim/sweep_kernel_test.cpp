// Kernel-equivalence suite for the threshold-sweep counting kernel.
//
// The dispatching entry points (count_ge_desc / count_le_asc and their
// linear helpers) must return the same integer as the always-compiled
// scalar references on every input — that is the bit-identity argument
// for swapping the SIMD path in and out (FNDA_SCALAR_SWEEP).  The suite
// runs identically against both builds: under the scalar-forced build it
// degenerates to reference == reference, which keeps the CI leg honest.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sweep_kernel.h"

namespace fnda {
namespace {

std::vector<std::int64_t> random_lane(Rng& rng, std::size_t n,
                                      std::int64_t lo, std::int64_t hi,
                                      bool descending) {
  std::vector<std::int64_t> lane;
  lane.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lane.push_back(lo + static_cast<std::int64_t>(
                            rng.below(static_cast<std::uint64_t>(hi - lo + 1))));
  }
  std::sort(lane.begin(), lane.end());
  if (descending) std::reverse(lane.begin(), lane.end());
  return lane;
}

/// Thresholds worth probing for a lane: every element, its neighbors, and
/// far out-of-range sentinels — the boundary cases of a partition point.
std::vector<std::int64_t> probe_thresholds(const std::vector<std::int64_t>& lane) {
  std::vector<std::int64_t> probes{std::numeric_limits<std::int64_t>::min() / 2,
                                   std::numeric_limits<std::int64_t>::max() / 2,
                                   0, 1, -1};
  for (const std::int64_t v : lane) {
    probes.push_back(v);
    probes.push_back(v - 1);
    probes.push_back(v + 1);
  }
  return probes;
}

TEST(SweepKernelTest, LinearCountsMatchScalarOnUnsortedWindows) {
  Rng rng(0x5eedbeef);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{5}, std::size_t{8},
                              std::size_t{13}, std::size_t{64},
                              std::size_t{127}, std::size_t{128},
                              std::size_t{129}, std::size_t{1000}}) {
    std::vector<std::int64_t> window;
    window.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      window.push_back(static_cast<std::int64_t>(rng.below(2000)) - 1000);
    }
    for (const std::int64_t r :
         {std::int64_t{-1500}, std::int64_t{-1}, std::int64_t{0},
          std::int64_t{1}, std::int64_t{999}, std::int64_t{1500}}) {
      EXPECT_EQ(simd::count_ge_linear(window.data(), n, r),
                simd::count_ge_linear_scalar(window.data(), n, r))
          << "n=" << n << " r=" << r;
      EXPECT_EQ(simd::count_le_linear(window.data(), n, r),
                simd::count_le_linear_scalar(window.data(), n, r))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(SweepKernelTest, PartitionPointsMatchScalarOnRandomSortedLanes) {
  Rng rng(0xabcdef01);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{127},
        std::size_t{128}, std::size_t{129}, std::size_t{500},
        std::size_t{2048}, std::size_t{4097}}) {
    const std::vector<std::int64_t> desc = random_lane(rng, n, -50, 50, true);
    const std::vector<std::int64_t> asc = random_lane(rng, n, -50, 50, false);
    for (const std::int64_t r : probe_thresholds(desc)) {
      EXPECT_EQ(simd::count_ge_desc(desc.data(), n, r),
                simd::count_ge_desc_scalar(desc.data(), n, r))
          << "n=" << n << " r=" << r;
    }
    for (const std::int64_t r : probe_thresholds(asc)) {
      EXPECT_EQ(simd::count_le_asc(asc.data(), n, r),
                simd::count_le_asc_scalar(asc.data(), n, r))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(SweepKernelTest, PartitionPointsMatchLowerBoundSemantics) {
  // The scalar reference itself must equal the STL partition point — this
  // anchors BOTH implementations to a first-principles definition.
  Rng rng(0x77777777);
  for (const std::size_t n : {std::size_t{129}, std::size_t{2500}}) {
    const std::vector<std::int64_t> desc = random_lane(rng, n, 0, 30, true);
    const std::vector<std::int64_t> asc = random_lane(rng, n, 0, 30, false);
    for (std::int64_t r = -2; r <= 32; ++r) {
      const auto ge_expected = static_cast<std::size_t>(
          std::partition_point(desc.begin(), desc.end(),
                               [r](std::int64_t v) { return v >= r; }) -
          desc.begin());
      const auto le_expected = static_cast<std::size_t>(
          std::partition_point(asc.begin(), asc.end(),
                               [r](std::int64_t v) { return v <= r; }) -
          asc.begin());
      EXPECT_EQ(simd::count_ge_desc(desc.data(), n, r), ge_expected);
      EXPECT_EQ(simd::count_le_asc(asc.data(), n, r), le_expected);
      EXPECT_EQ(simd::count_ge_desc_scalar(desc.data(), n, r), ge_expected);
      EXPECT_EQ(simd::count_le_asc_scalar(asc.data(), n, r), le_expected);
    }
  }
}

TEST(SweepKernelTest, AdversarialLanes) {
  // All-equal lanes put every element on the partition boundary; the
  // extreme thresholds exercise empty and full counts at sizes that
  // straddle the vector width and the linear window.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{127}, std::size_t{128},
        std::size_t{129}, std::size_t{2000}}) {
    const std::vector<std::int64_t> flat(n, 42);
    for (const std::int64_t r :
         {std::int64_t{41}, std::int64_t{42}, std::int64_t{43}}) {
      const std::size_t ge = simd::count_ge_desc(flat.data(), n, r);
      const std::size_t le = simd::count_le_asc(flat.data(), n, r);
      EXPECT_EQ(ge, r <= 42 ? n : 0u) << "n=" << n << " r=" << r;
      EXPECT_EQ(le, r >= 42 ? n : 0u) << "n=" << n << " r=" << r;
      EXPECT_EQ(ge, simd::count_ge_desc_scalar(flat.data(), n, r));
      EXPECT_EQ(le, simd::count_le_asc_scalar(flat.data(), n, r));
    }
  }
}

TEST(SweepKernelTest, ExtremeValuesDoNotOverflow) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  const std::vector<std::int64_t> desc{max, max, 0, min + 1, min};
  for (const std::int64_t r : {min, min + 1, std::int64_t{-1}, std::int64_t{0},
                               std::int64_t{1}, max - 1, max}) {
    EXPECT_EQ(simd::count_ge_desc(desc.data(), desc.size(), r),
              simd::count_ge_desc_scalar(desc.data(), desc.size(), r))
        << "r=" << r;
  }
}

TEST(SweepKernelTest, CountersAdvanceAndNameIsConsistent) {
  // The dispatch build flavor fixes lane width and name together.
  if (simd::kernel_lane_width() == 1) {
    EXPECT_STREQ(simd::kernel_name(), "scalar-branchless");
  } else {
    EXPECT_EQ(simd::kernel_lane_width(), 2u);
    EXPECT_STREQ(simd::kernel_name(), "gcc-vector-128x2");
  }

  const std::vector<std::int64_t> lane(100, 7);
  const simd::KernelCounters& counters = simd::kernel_counters();
  const std::uint64_t calls_before =
      counters.calls.load(std::memory_order_relaxed);
  const std::uint64_t elems_before =
      counters.vector_elems.load(std::memory_order_relaxed) +
      counters.tail_elems.load(std::memory_order_relaxed);
  ASSERT_EQ(simd::count_ge_linear(lane.data(), lane.size(), 7), 100u);
  EXPECT_EQ(counters.calls.load(std::memory_order_relaxed), calls_before + 1);
  EXPECT_EQ(counters.vector_elems.load(std::memory_order_relaxed) +
                counters.tail_elems.load(std::memory_order_relaxed),
            elems_before + lane.size());
}

}  // namespace
}  // namespace fnda
