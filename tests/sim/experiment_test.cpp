#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "protocols/efficient.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

TEST(ExperimentTest, RunsRequestedInstances) {
  const TpdProtocol tpd(money(50));
  ExperimentConfig config;
  config.instances = 25;
  const ComparisonResult result =
      run_comparison(fixed_count_generator(5, 5), {&tpd}, config);
  EXPECT_EQ(result.pareto.count(), 25u);
  ASSERT_EQ(result.protocols.size(), 1u);
  EXPECT_EQ(result.protocols[0].total.count(), 25u);
  EXPECT_EQ(result.protocols[0].name, "tpd");
}

TEST(ExperimentTest, SummaryLookupByName) {
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  ExperimentConfig config;
  config.instances = 10;
  const ComparisonResult result =
      run_comparison(fixed_count_generator(5, 5), {&tpd, &pmd}, config);
  EXPECT_EQ(result.summary("pmd").name, "pmd");
  EXPECT_EQ(result.summary("tpd").name, "tpd");
  EXPECT_THROW(result.summary("nope"), std::out_of_range);
}

TEST(ExperimentTest, RatiosBoundedByOne) {
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const EfficientClearing efficient;
  ExperimentConfig config;
  config.instances = 200;
  const ComparisonResult result = run_comparison(
      fixed_count_generator(10, 10), {&tpd, &pmd, &efficient}, config);

  for (const char* name : {"tpd", "pmd", "efficient"}) {
    EXPECT_GT(result.ratio_total(name), 0.0) << name;
    EXPECT_LE(result.ratio_total(name), 1.0 + 1e-9) << name;
    EXPECT_LE(result.ratio_except_auctioneer(name),
              result.ratio_total(name) + 1e-12)
        << name;
  }
  // The efficient oracle achieves the bound exactly.
  EXPECT_NEAR(result.ratio_total("efficient"), 1.0, 1e-12);
}

TEST(ExperimentTest, PaperTrendTpdApproachesParetoWithScale) {
  // Table 1's qualitative claim: TPD efficiency rises toward 100% as the
  // market grows.
  const TpdProtocol tpd(money(50));
  ExperimentConfig config;
  config.instances = 300;
  const ComparisonResult small =
      run_comparison(fixed_count_generator(5, 5), {&tpd}, config);
  const ComparisonResult large =
      run_comparison(fixed_count_generator(100, 100), {&tpd}, config);
  EXPECT_GT(large.ratio_total("tpd"), small.ratio_total("tpd"));
  EXPECT_GT(large.ratio_total("tpd"), 0.98);
  EXPECT_GT(small.ratio_total("tpd"), 0.85);
}

TEST(ExperimentTest, PmdBeatsOrMatchesTpdOnTradersSurplus) {
  // Table 1: PMD's "except auctioneer" column dominates TPD's (PMD hands
  // almost nothing to the auctioneer).
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  ExperimentConfig config;
  config.instances = 300;
  const ComparisonResult result =
      run_comparison(fixed_count_generator(25, 25), {&tpd, &pmd}, config);
  EXPECT_GT(result.ratio_except_auctioneer("pmd"),
            result.ratio_except_auctioneer("tpd"));
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  const TpdProtocol tpd(money(50));
  ExperimentConfig config;
  config.instances = 50;
  config.seed = 123;
  const ComparisonResult a =
      run_comparison(fixed_count_generator(8, 8), {&tpd}, config);
  const ComparisonResult b =
      run_comparison(fixed_count_generator(8, 8), {&tpd}, config);
  EXPECT_DOUBLE_EQ(a.protocols[0].total.mean(), b.protocols[0].total.mean());
  EXPECT_DOUBLE_EQ(a.pareto.mean(), b.pareto.mean());
}

TEST(ExperimentTest, TradeCountsTracked) {
  const EfficientClearing efficient;
  ExperimentConfig config;
  config.instances = 100;
  const ComparisonResult result =
      run_comparison(fixed_count_generator(20, 20), {&efficient}, config);
  EXPECT_DOUBLE_EQ(result.summary("efficient").trades.mean(),
                   result.pareto_trades.mean());
  EXPECT_GT(result.pareto_trades.mean(), 5.0);
}

TEST(ExperimentTest, EmptyMarketsYieldZeroSurplus) {
  const TpdProtocol tpd(money(50));
  ExperimentConfig config;
  config.instances = 5;
  const ComparisonResult result =
      run_comparison(fixed_count_generator(0, 0), {&tpd}, config);
  EXPECT_DOUBLE_EQ(result.pareto.mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.ratio_total("tpd"), 0.0);  // guarded division
}

}  // namespace
}  // namespace fnda
