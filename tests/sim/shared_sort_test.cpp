// Contract tests for the sort-once clearing fast path:
//   * clear_sorted(SortedBook(book, rng)) must equal clear(book, rng) for
//     every protocol (the wrapper contract of DoubleAuctionProtocol),
//   * the incremental TPD sweep kernel must match TpdProtocol::clear
//     EXACTLY (fixed-point equality) threshold by threshold,
//   * run_comparison_parallel stays bit-identical across thread counts on
//     both the shared-sort and legacy paths,
//   * the legacy path and the shared path agree exactly on the
//     deterministic protocols' surplus means (the Table 1/2 numbers),
//   * validation failures inside worker threads still propagate.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "protocols/efficient.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "protocols/tpd_rebate.h"
#include "protocols/vcg.h"
#include "sim/experiment.h"
#include "sim/threshold_search.h"

namespace fnda {
namespace {

/// Random book over integer values; `tie_heavy` draws from three values
/// only, so equal-value runs are long on both sides.
OrderBook random_book(Rng& rng, bool tie_heavy) {
  OrderBook book;
  const std::size_t buyers = rng.below(13);
  const std::size_t sellers = rng.below(13);
  auto draw = [&]() {
    if (tie_heavy) {
      return Money::from_units(30 + 20 * static_cast<std::int64_t>(rng.below(3)));
    }
    return Money::from_units(static_cast<std::int64_t>(rng.below(101)));
  };
  for (std::size_t i = 0; i < buyers; ++i) {
    book.add_buyer(IdentityId{i}, draw());
  }
  for (std::size_t j = 0; j < sellers; ++j) {
    book.add_seller(IdentityId{1000 + j}, draw());
  }
  return book;
}

void expect_same_outcome(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.fills(), b.fills());
  EXPECT_EQ(a.buyer_payments(), b.buyer_payments());
  EXPECT_EQ(a.seller_receipts(), b.seller_receipts());
  EXPECT_EQ(a.rebates_total(), b.rebates_total());
  for (const Fill& fill : a.fills()) {
    EXPECT_EQ(a.rebate_of(fill.identity), b.rebate_of(fill.identity));
  }
}

TEST(SharedSortTest, ClearSortedMatchesClearForEveryProtocol) {
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const EfficientClearing efficient;
  const RandomThresholdProtocol random_threshold(money(50));
  const KDoubleAuction kda(0.5);
  const VcgDoubleAuction vcg;
  const TpdWithRebates tpd_rebate(money(50));
  const std::vector<const DoubleAuctionProtocol*> protocols = {
      &tpd, &pmd, &efficient, &random_threshold, &kda, &vcg, &tpd_rebate};

  Rng book_rng(0xc0ffee);
  for (int trial = 0; trial < 40; ++trial) {
    const OrderBook book = random_book(book_rng, trial % 2 == 0);
    const std::uint64_t seed = book_rng();
    for (const DoubleAuctionProtocol* protocol : protocols) {
      Rng via_clear(seed);
      const Outcome a = protocol->clear(book, via_clear);

      Rng via_sorted(seed);
      const SortedBook sorted(book, via_sorted);
      const Outcome b = protocol->clear_sorted(sorted, via_sorted);

      SCOPED_TRACE(protocol->name());
      expect_same_outcome(a, b);
    }
  }
}

/// TPD surplus decomposition recomputed the slow way, straight from a
/// cleared Outcome and the book's declared values.
struct SlowTpd {
  Money total;
  Money auctioneer;
  std::size_t trades;
};

SlowTpd slow_tpd(const SortedBook& book, Money threshold) {
  std::unordered_map<BidId, Money> value_of;
  for (const BidEntry& e : book.buyers()) value_of.emplace(e.id, e.value);
  for (const BidEntry& e : book.sellers()) value_of.emplace(e.id, e.value);

  const Outcome outcome = TpdProtocol::clear_sorted(book, threshold);
  SlowTpd result{Money{}, outcome.auctioneer_revenue(), outcome.trade_count()};
  for (const Fill& fill : outcome.fills()) {
    if (fill.side == Side::kBuyer) {
      result.total = result.total + value_of.at(fill.bid);
    } else {
      result.total = result.total - value_of.at(fill.bid);
    }
  }
  return result;
}

TEST(SweepKernelTest, MatchesTpdClearExactlyOnRandomBooks) {
  std::vector<Money> thresholds;
  for (int r = 0; r <= 100; r += 5) thresholds.push_back(money(r));
  thresholds.push_back(Money::from_double(49.5));  // off-grid, between values

  Rng rng(0x5eed5);
  for (int trial = 0; trial < 100; ++trial) {
    const bool tie_heavy = trial % 2 == 1;
    const OrderBook raw = random_book(rng, tie_heavy);
    const SortedBook book(raw, rng);

    const std::vector<TpdThresholdOutcome> swept =
        sweep_tpd_surplus(book, thresholds);
    ASSERT_EQ(swept.size(), thresholds.size());

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      const SlowTpd expected = slow_tpd(book, thresholds[t]);
      SCOPED_TRACE(testing::Message()
                   << "trial " << trial << " threshold "
                   << thresholds[t].to_double());
      // Exact fixed-point equality, not approximate: the kernel and the
      // protocol must implement the same arithmetic.
      EXPECT_EQ(swept[t].trades, expected.trades);
      EXPECT_EQ(swept[t].total, expected.total);
      EXPECT_EQ(swept[t].auctioneer, expected.auctioneer);
    }
  }
}

TEST(SweepKernelTest, InstanceAndSortedBookPreparationsAgree) {
  Rng rng(0xabcde);
  for (int trial = 0; trial < 20; ++trial) {
    SingleUnitInstance instance;
    const std::size_t m = rng.below(10);
    const std::size_t n = rng.below(10);
    for (std::size_t i = 0; i < m; ++i) {
      instance.buyer_values.push_back(
          Money::from_units(static_cast<std::int64_t>(rng.below(101))));
    }
    for (std::size_t j = 0; j < n; ++j) {
      instance.seller_values.push_back(
          Money::from_units(static_cast<std::int64_t>(rng.below(101))));
    }
    const InstantiatedMarket market = instantiate_truthful(instance);
    const SortedBook sorted(market.book, rng);

    const TpdSweepBook from_instance(instance);
    const TpdSweepBook from_book(sorted);
    for (int r = 0; r <= 100; r += 10) {
      const TpdThresholdOutcome a = from_instance.evaluate(money(r));
      const TpdThresholdOutcome b = from_book.evaluate(money(r));
      EXPECT_EQ(a.trades, b.trades);
      EXPECT_EQ(a.total, b.total);
      EXPECT_EQ(a.auctioneer, b.auctioneer);
    }
  }
}

void expect_bit_identical(const ComparisonResult& a, const ComparisonResult& b,
                          const std::vector<std::string>& names) {
  EXPECT_DOUBLE_EQ(a.pareto.mean(), b.pareto.mean());
  EXPECT_DOUBLE_EQ(a.pareto.variance(), b.pareto.variance());
  for (const std::string& name : names) {
    EXPECT_DOUBLE_EQ(a.summary(name).total.mean(), b.summary(name).total.mean());
    EXPECT_DOUBLE_EQ(a.summary(name).total.variance(),
                     b.summary(name).total.variance());
    EXPECT_DOUBLE_EQ(a.summary(name).auctioneer.sum(),
                     b.summary(name).auctioneer.sum());
    EXPECT_DOUBLE_EQ(a.summary(name).trades.mean(),
                     b.summary(name).trades.mean());
  }
}

TEST(SharedSortTest, ParallelBitIdenticalAcrossThreadCounts) {
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const RandomThresholdProtocol random_threshold(money(50));
  const std::vector<const DoubleAuctionProtocol*> protocols = {
      &tpd, &pmd, &random_threshold};
  const InstanceGenerator gen = fixed_count_generator(15, 15);
  const std::vector<std::string> names = {"tpd", "pmd", "random-threshold"};

  for (const bool shared : {true, false}) {
    ExperimentConfig config;
    config.instances = 150;  // not a multiple of the block count
    config.seed = 42;
    config.shared_sort = shared;
    const ComparisonResult one =
        run_comparison_parallel(gen, protocols, config, 1);
    const ComparisonResult two =
        run_comparison_parallel(gen, protocols, config, 2);
    const ComparisonResult eight =
        run_comparison_parallel(gen, protocols, config, 8);
    SCOPED_TRACE(shared ? "shared-sort path" : "legacy path");
    EXPECT_EQ(one.pareto.count(), 150u);
    expect_bit_identical(one, two, names);
    expect_bit_identical(one, eight, names);
  }
}

TEST(SharedSortTest, LegacyPathMatchesSharedMeansForDeterministicProtocols) {
  // TPD/PMD/efficient surpluses are functions of the value ranking alone,
  // and both paths accumulate fills in rank order — so the per-instance
  // surplus sequences (and hence the Table 1/2 means) are EXACTLY equal,
  // not merely statistically close.
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const EfficientClearing efficient;
  const std::vector<const DoubleAuctionProtocol*> protocols = {&tpd, &pmd,
                                                               &efficient};
  const InstanceGenerator gen = fixed_count_generator(20, 20);

  ExperimentConfig shared;
  shared.instances = 400;
  shared.seed = 20010416;
  shared.shared_sort = true;
  ExperimentConfig legacy = shared;
  legacy.shared_sort = false;

  const ComparisonResult a = run_comparison(gen, protocols, shared);
  const ComparisonResult b = run_comparison(gen, protocols, legacy);
  for (const std::string name : {"tpd", "pmd", "efficient"}) {
    EXPECT_DOUBLE_EQ(a.summary(name).total.mean(), b.summary(name).total.mean())
        << name;
    EXPECT_DOUBLE_EQ(a.summary(name).except_auctioneer.mean(),
                     b.summary(name).except_auctioneer.mean())
        << name;
    EXPECT_DOUBLE_EQ(a.summary(name).trades.mean(), b.summary(name).trades.mean())
        << name;
  }
  EXPECT_DOUBLE_EQ(a.pareto.mean(), b.pareto.mean());
}

/// Old-style protocol that overrides ONLY the raw-book entry point, to
/// exercise the inherited clear_sorted fallback (reconstitute a raw book,
/// clear it, translate fills back to the original bid IDs).  Trades the
/// efficient pairs at the marginal midpoint — enough structure to catch a
/// bad ID remap.
class LegacyOnlyProtocol final : public DoubleAuctionProtocol {
 public:
  Outcome clear(const OrderBook& book, Rng& rng) const override {
    const SortedBook sorted(book, rng);
    Outcome outcome;
    const std::size_t k = sorted.efficient_trade_count();
    if (k == 0) return outcome;
    const Money price =
        Money::midpoint(sorted.buyer_value(k), sorted.seller_value(k));
    for (std::size_t rank = 1; rank <= k; ++rank) {
      outcome.add_buy(sorted.buyer(rank).id, sorted.buyer(rank).identity,
                      price);
      outcome.add_sell(sorted.seller(rank).id, sorted.seller(rank).identity,
                       price);
    }
    return outcome;
  }
  std::string name() const override { return "legacy-only"; }
};

TEST(SharedSortTest, FallbackPreservesOriginalBidIds) {
  const LegacyOnlyProtocol protocol;
  Rng book_rng(0xfa11bac);
  for (int trial = 0; trial < 20; ++trial) {
    const OrderBook book = random_book(book_rng, trial % 2 == 0);
    Rng rng(trial);
    const SortedBook sorted(book, rng);
    const Outcome outcome = protocol.clear_sorted(sorted, rng);

    // Every fill must reference a bid that exists in the ORIGINAL book,
    // with its original identity (the raw reconstituted book assigns
    // fresh sequential IDs; the fallback must translate them back).
    for (const Fill& fill : outcome.fills()) {
      const auto& lane =
          fill.side == Side::kBuyer ? book.buyers() : book.sellers();
      bool found = false;
      for (const BidEntry& entry : lane) {
        if (entry.id == fill.bid) {
          EXPECT_EQ(entry.identity, fill.identity);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "fill references a bid id not in the book";
    }
    // And the outcome must pass full validation against the original book.
    if (outcome.trade_count() > 0) {
      EXPECT_TRUE(validate_outcome(book, outcome, {}).empty());
    }
  }
}

/// Deliberately broken protocol: reports a buy fill with no matching sell
/// fill, which expect_valid_outcome rejects.
class UnbalancedProtocol final : public DoubleAuctionProtocol {
 public:
  Outcome clear_sorted(const SortedBook& book, Rng&) const override {
    Outcome outcome;
    if (book.buyer_count() > 0) {
      const BidEntry& top = book.buyer(1);
      outcome.add_buy(top.id, top.identity, top.value);
    }
    return outcome;
  }
  std::string name() const override { return "unbalanced"; }
};

TEST(SharedSortTest, ValidationFailureInsideWorkerPropagates) {
  const UnbalancedProtocol bad;
  const InstanceGenerator gen = fixed_count_generator(5, 5);
  ExperimentConfig config;
  config.instances = 64;
  ASSERT_TRUE(config.validate);  // validation is on by default
  EXPECT_THROW(run_comparison_parallel(gen, {&bad}, config, 4),
               std::logic_error);
  EXPECT_THROW(run_comparison(gen, {&bad}, config), std::logic_error);
}

}  // namespace
}  // namespace fnda
