#include "sim/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/statistics.h"

namespace fnda {
namespace {

TEST(GeneratorsTest, FixedCountProducesExactCounts) {
  const InstanceGenerator gen = fixed_count_generator(7, 3);
  Rng rng(1);
  for (int run = 0; run < 20; ++run) {
    const SingleUnitInstance instance = gen(rng);
    EXPECT_EQ(instance.buyer_values.size(), 7u);
    EXPECT_EQ(instance.seller_values.size(), 3u);
  }
}

TEST(GeneratorsTest, ValuesWithinDistributionBounds) {
  ValueDistribution values;
  values.low = money(10);
  values.high = money(30);
  const InstanceGenerator gen = fixed_count_generator(50, 50, values);
  Rng rng(2);
  const SingleUnitInstance instance = gen(rng);
  for (Money v : instance.buyer_values) {
    EXPECT_GE(v, money(10));
    EXPECT_LE(v, money(30));
  }
  for (Money v : instance.seller_values) {
    EXPECT_GE(v, money(10));
    EXPECT_LE(v, money(30));
  }
}

TEST(GeneratorsTest, ValuesApproximatelyUniform) {
  const InstanceGenerator gen = fixed_count_generator(1000, 1000);
  Rng rng(3);
  const SingleUnitInstance instance = gen(rng);
  double sum = 0.0;
  for (Money v : instance.buyer_values) sum += v.to_double();
  // U[0,100]: mean 50, sd of mean ~ 0.91.
  EXPECT_NEAR(sum / 1000.0, 50.0, 4.0);
}

TEST(GeneratorsTest, BinomialCountsHaveMeanNOverTwo) {
  const InstanceGenerator gen = binomial_count_generator(100);
  Rng rng(4);
  double buyer_total = 0.0;
  constexpr int kDraws = 400;
  for (int run = 0; run < kDraws; ++run) {
    const SingleUnitInstance instance = gen(rng);
    buyer_total += static_cast<double>(instance.buyer_values.size());
    EXPECT_LE(instance.buyer_values.size(), 100u);
  }
  // mean 50, sd 5, sem 0.25.
  EXPECT_NEAR(buyer_total / kDraws, 50.0, 1.5);
}

TEST(GeneratorsTest, BinomialSidesIndependent) {
  const InstanceGenerator gen = binomial_count_generator(40);
  Rng rng(5);
  int different = 0;
  for (int run = 0; run < 100; ++run) {
    const SingleUnitInstance instance = gen(rng);
    if (instance.buyer_values.size() != instance.seller_values.size()) {
      ++different;
    }
  }
  EXPECT_GT(different, 50);  // equal counts would be the exception
}

TEST(GeneratorsTest, CorrelatedRhoZeroMatchesIndependentStatistics) {
  const InstanceGenerator gen = correlated_value_generator(400, 400, 0.0);
  Rng rng(6);
  const SingleUnitInstance instance = gen(rng);
  // Spread of an i.i.d. U[0,100] sample: near-full range.
  Money lo = Money::max_value();
  Money hi = Money::min_value();
  for (Money v : instance.buyer_values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, money(5));
  EXPECT_GT(hi, money(95));
}

TEST(GeneratorsTest, CorrelatedHighRhoCompressesWithinInstance) {
  // rho = 0.9: within one instance all values cluster near the common
  // component; across instances the cluster moves.
  const InstanceGenerator gen = correlated_value_generator(100, 100, 0.9);
  Rng rng(7);
  double spread_total = 0.0;
  RunningStats instance_means;
  for (int run = 0; run < 50; ++run) {
    const SingleUnitInstance instance = gen(rng);
    double lo = 1e18;
    double hi = -1e18;
    double sum = 0.0;
    for (Money v : instance.buyer_values) {
      lo = std::min(lo, v.to_double());
      hi = std::max(hi, v.to_double());
      sum += v.to_double();
    }
    spread_total += hi - lo;
    instance_means.add(sum / 100.0);
  }
  // Within-instance spread ~ 10% of the range; across-instance means vary
  // far more than an i.i.d. sample's would.
  EXPECT_LT(spread_total / 50.0, 25.0);
  EXPECT_GT(instance_means.stddev(), 10.0);
}

TEST(GeneratorsTest, CorrelatedValuesRespectConvexCombination) {
  const InstanceGenerator gen = correlated_value_generator(50, 50, 0.5);
  Rng rng(8);
  for (int run = 0; run < 20; ++run) {
    const SingleUnitInstance instance = gen(rng);
    for (Money v : instance.buyer_values) {
      EXPECT_GE(v, money(0));
      EXPECT_LE(v, money(100));
    }
  }
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  const InstanceGenerator gen = binomial_count_generator(20);
  Rng rng1(7);
  Rng rng2(7);
  const SingleUnitInstance a = gen(rng1);
  const SingleUnitInstance b = gen(rng2);
  EXPECT_EQ(a.buyer_values, b.buyer_values);
  EXPECT_EQ(a.seller_values, b.seller_values);
}

}  // namespace
}  // namespace fnda
