// Parameterized property sweeps: TPD across the threshold axis and kDA
// across the theta axis — every protocol parameter value must satisfy the
// same invariants.
#include <gtest/gtest.h>

#include "core/surplus.h"
#include "core/validation.h"
#include "mechanism/properties.h"
#include "protocols/kda.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

class TpdThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(TpdThresholdSweep, InvariantsAndPricingStructure) {
  const Money r = Money::from_units(GetParam());
  const TpdProtocol tpd(r);
  InstanceSpec spec;
  spec.max_buyers = 12;
  spec.max_sellers = 12;
  Rng rng(0x5eed0 + static_cast<std::uint64_t>(GetParam()));

  for (int run = 0; run < 100; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = tpd.clear(market.book, clear_rng);
    expect_valid_outcome(market.book, outcome);

    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    const std::size_t i = sorted.buyers_at_or_above(r);
    const std::size_t j = sorted.sellers_at_or_below(r);
    ASSERT_EQ(outcome.trade_count(), std::min(i, j));

    // Price structure per Section 5.1: the short side's price is pinned.
    for (const Fill& fill : outcome.fills()) {
      if (i == j) {
        EXPECT_EQ(fill.price, r);
      } else if (i > j && fill.side == Side::kSeller) {
        EXPECT_EQ(fill.price, r);
      } else if (i < j && fill.side == Side::kBuyer) {
        EXPECT_EQ(fill.price, r);
      }
      // Traded buyers are all >= r, traded sellers <= r.
      if (fill.side == Side::kBuyer) {
        EXPECT_GE(market.truth.buyer_values.at(fill.identity), r);
      } else {
        EXPECT_LE(market.truth.seller_values.at(fill.identity), r);
      }
    }
  }
}

TEST_P(TpdThresholdSweep, RobustAgainstOneFalseNameOnSmallInstances) {
  const Money r = Money::from_units(GetParam());
  const TpdProtocol tpd(r);
  IcCheckConfig config;
  config.instances = 8;
  config.manipulators_per_instance = 2;
  config.instance_spec.max_buyers = 4;
  config.instance_spec.max_sellers = 4;
  config.search.max_declarations = 2;
  config.seed = 0xab0 + static_cast<std::uint64_t>(GetParam());
  const IcCheckReport report = check_incentive_compatibility(tpd, config);
  EXPECT_TRUE(report.clean())
      << "threshold " << GetParam() << ": "
      << report.violations.front().strategy.to_string();
}

INSTANTIATE_TEST_SUITE_P(Thresholds, TpdThresholdSweep,
                         ::testing::Values(0, 10, 25, 40, 50, 60, 75, 90,
                                           100));

class KdaThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(KdaThetaSweep, EfficientBalancedAndIrAtEveryTheta) {
  const KDoubleAuction kda(GetParam());
  InstanceSpec spec;
  spec.max_buyers = 10;
  spec.max_sellers = 10;
  Rng rng(0x7e7a);
  for (int run = 0; run < 100; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = kda.clear(market.book, clear_rng);
    EXPECT_TRUE(validate_outcome(market.book, outcome).empty());
    EXPECT_EQ(outcome.auctioneer_revenue(), Money{});

    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    EXPECT_EQ(outcome.trade_count(), sorted.efficient_trade_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, KdaThetaSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace fnda
