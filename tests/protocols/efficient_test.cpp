#include "protocols/efficient.h"

#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/surplus.h"
#include "core/validation.h"

namespace fnda {
namespace {

TEST(EfficientTest, ExecutesAllEfficientTrades) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(5));
  Rng rng(1);
  const Outcome outcome = EfficientClearing().clear(book, rng);
  expect_valid_outcome(book, outcome);

  EXPECT_EQ(outcome.trade_count(), 3u);
  // Uniform price (b(3) + s(3)) / 2 = (7 + 4) / 2 = 5.5; budget balanced.
  for (const Fill& fill : outcome.fills()) {
    EXPECT_EQ(fill.price, money(5.5));
  }
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
}

TEST(EfficientTest, RealizedSurplusEqualsEfficientSurplus) {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(5)};
  const InstantiatedMarket market = instantiate_truthful(instance);

  Rng rng_clear(1);
  const Outcome outcome = EfficientClearing().clear(market.book, rng_clear);
  const SurplusReport report = realized_surplus(outcome, market.truth);

  Rng rng_sort(2);
  const SortedBook sorted(market.book, rng_sort);
  EXPECT_DOUBLE_EQ(report.total, efficient_surplus(sorted));
  EXPECT_DOUBLE_EQ(report.total, 15.0);
  EXPECT_DOUBLE_EQ(report.except_auctioneer, report.total);
}

TEST(EfficientTest, EmptyAndNoOverlap) {
  OrderBook empty;
  Rng rng(1);
  EXPECT_EQ(EfficientClearing().clear(empty, rng).trade_count(), 0u);

  OrderBook no_overlap;
  no_overlap.add_buyer(IdentityId{0}, money(1));
  no_overlap.add_seller(IdentityId{1}, money(2));
  EXPECT_EQ(EfficientClearing().clear(no_overlap, rng).trade_count(), 0u);
}

TEST(EfficientTest, DegenerateEqualPairTradesAtThatValue) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(5));
  book.add_seller(IdentityId{1}, money(5));
  Rng rng(1);
  const Outcome outcome = EfficientClearing().clear(book, rng);
  ASSERT_EQ(outcome.trade_count(), 1u);
  EXPECT_EQ(outcome.fills().front().price, money(5));
}

}  // namespace
}  // namespace fnda
