#include "protocols/tpd.h"

#include <gtest/gtest.h>

#include "core/validation.h"

namespace fnda {
namespace {

// Examples 3/4 reuse the valuations of Examples 1/2.
OrderBook example3() {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(5));
  return book;
}

OrderBook example4() {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(12));
  return book;
}

TEST(TpdTest, Example3BalancedCaseTradesAtThreshold) {
  OrderBook book = example3();
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(4.5)).clear(book, rng);
  expect_valid_outcome(book, outcome);

  // r = 4.5: i = 3 buyers above, j = 3 sellers below -> case 1.
  EXPECT_EQ(outcome.trade_count(), 3u);
  for (const Fill& fill : outcome.fills()) {
    EXPECT_EQ(fill.price, money(4.5));
  }
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
}

TEST(TpdTest, Example3FalseNameBuyerBidIsUseless) {
  // A seller adds a fake buyer bid at 4.8: i = 4 > j = 3 -> case 2.
  // Sellers still receive exactly the threshold 4.5; buyers now pay
  // b(j+1) = b(4) = 4.8, and the spread goes to the auctioneer.
  OrderBook book = example3();
  book.add_buyer(IdentityId{99}, money(4.8));
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(4.5)).clear(book, rng);
  expect_valid_outcome(book, outcome);

  EXPECT_EQ(outcome.trade_count(), 3u);
  for (const Fill& fill : outcome.fills()) {
    if (fill.side == Side::kSeller) {
      EXPECT_EQ(fill.price, money(4.5));  // unchanged for sellers
    } else {
      EXPECT_EQ(fill.price, money(4.8));
    }
  }
  EXPECT_EQ(outcome.auctioneer_revenue(), money(0.9));  // 3 * (4.8 - 4.5)
  EXPECT_EQ(outcome.units_bought(IdentityId{99}), 0u);
}

TEST(TpdTest, Example4ThresholdSixBalanced) {
  OrderBook book = example4();
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(6)).clear(book, rng);
  expect_valid_outcome(book, outcome);

  // r = 6: buyers {9,8,7}, sellers {2,3,4} -> case 1 at price 6.
  EXPECT_EQ(outcome.trade_count(), 3u);
  for (const Fill& fill : outcome.fills()) {
    EXPECT_EQ(fill.price, money(6));
  }
}

TEST(TpdTest, Example4ThresholdSevenPointFiveExcessSupply) {
  OrderBook book = example4();
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(7.5)).clear(book, rng);
  expect_valid_outcome(book, outcome);

  // r = 7.5: i = 2 buyers (9, 8); j = 3 sellers (2, 3, 4) -> case 3.
  // Buyers pay r = 7.5; sellers get s(i+1) = s(3) = 4.
  EXPECT_EQ(outcome.trade_count(), 2u);
  for (const Fill& fill : outcome.fills()) {
    if (fill.side == Side::kBuyer) {
      EXPECT_EQ(fill.price, money(7.5));
    } else {
      EXPECT_EQ(fill.price, money(4));
    }
  }
  EXPECT_EQ(outcome.auctioneer_revenue(), money(7));  // 2 * (7.5 - 4)
  // Seller (3) (value 4) is excluded even though 4 < r.
  EXPECT_EQ(outcome.units_sold(IdentityId{12}), 0u);
}

TEST(TpdTest, Example4FalseNameSellerBidStillExcluded) {
  // Seller (3) adds a fake seller bid at 6 (the Example 2 attack).  Under
  // TPD with r = 7.5 the fake bid changes nothing for the attacker: j
  // rises to 4, i = 2, and the traded sellers are still ranks (1)-(2).
  OrderBook book = example4();
  book.add_seller(IdentityId{99}, money(6));
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(7.5)).clear(book, rng);
  expect_valid_outcome(book, outcome);

  EXPECT_EQ(outcome.trade_count(), 2u);
  EXPECT_EQ(outcome.units_sold(IdentityId{12}), 0u);
  EXPECT_EQ(outcome.units_sold(IdentityId{99}), 0u);
  // Sellers now get s(i+1) = s(3) = 4 (unchanged).
  for (const Fill& fill : outcome.fills()) {
    if (fill.side == Side::kSeller) {
      EXPECT_EQ(fill.price, money(4));
    }
  }
}

TEST(TpdTest, CaseTwoBuyersPayNextBuyerValue) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(10));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(6));
  book.add_seller(IdentityId{10}, money(1));
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(5)).clear(book, rng);
  expect_valid_outcome(book, outcome);

  // i = 3, j = 1 -> 1 trade; buyer pays b(2) = 8; seller gets r = 5.
  ASSERT_EQ(outcome.trade_count(), 1u);
  EXPECT_EQ(outcome.paid_by(IdentityId{0}), money(8));
  EXPECT_EQ(outcome.received_by(IdentityId{10}), money(5));
  EXPECT_EQ(outcome.auctioneer_revenue(), money(3));
}

TEST(TpdTest, ValueExactlyAtThresholdCountsBothSides) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(5));
  book.add_seller(IdentityId{1}, money(5));
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(5)).clear(book, rng);
  expect_valid_outcome(book, outcome);
  // b = r and s = r: i = j = 1, trade at r with zero utility for both.
  ASSERT_EQ(outcome.trade_count(), 1u);
  EXPECT_EQ(outcome.fills().front().price, money(5));
}

TEST(TpdTest, NoEligibleParticipantsNoTrades) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(3));
  book.add_seller(IdentityId{1}, money(8));
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(5)).clear(book, rng);
  EXPECT_EQ(outcome.trade_count(), 0u);
}

TEST(TpdTest, OnlyBuyersEligibleNoTrades) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_seller(IdentityId{2}, money(20));
  Rng rng(1);
  // i = 2, j = 0 -> case 2 with zero trades.
  const Outcome outcome = TpdProtocol(money(5)).clear(book, rng);
  EXPECT_EQ(outcome.trade_count(), 0u);
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
}

TEST(TpdTest, EmptyBook) {
  OrderBook book;
  Rng rng(1);
  EXPECT_EQ(TpdProtocol(money(50)).clear(book, rng).trade_count(), 0u);
}

TEST(TpdTest, SellersAlwaysPaidExactlyThresholdInCase2) {
  // Property highlighted by Example 3's discussion: in case 2 the seller
  // price is pinned to r regardless of buyer-side manipulation.
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(90));
  book.add_buyer(IdentityId{1}, money(80));
  book.add_buyer(IdentityId{2}, money(70));
  book.add_seller(IdentityId{10}, money(10));
  book.add_seller(IdentityId{11}, money(20));
  Rng rng(1);
  const Outcome outcome = TpdProtocol(money(50)).clear(book, rng);
  ASSERT_EQ(outcome.trade_count(), 2u);
  for (const Fill& fill : outcome.fills()) {
    if (fill.side == Side::kSeller) {
      EXPECT_EQ(fill.price, money(50));
    } else {
      EXPECT_EQ(fill.price, money(70));
    }
  }
}

TEST(TpdTest, ThresholdAccessorAndName) {
  const TpdProtocol tpd(money(42));
  EXPECT_EQ(tpd.threshold(), money(42));
  EXPECT_EQ(tpd.name(), "tpd");
}

}  // namespace
}  // namespace fnda
