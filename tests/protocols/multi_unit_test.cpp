#include "protocols/multi_unit.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace fnda {
namespace {

TEST(MultiUnitBookTest, RejectsEmptyOrIncreasingMarginals) {
  MultiUnitBook book;
  EXPECT_THROW(book.add_buyer(IdentityId{0}, {}), std::invalid_argument);
  EXPECT_THROW(book.add_buyer(IdentityId{0}, {money(3), money(5)}),
               std::invalid_argument);
  EXPECT_THROW(book.add_seller(IdentityId{0}, {money(2), money(4)}),
               std::invalid_argument);
  // Non-increasing (with equality) is fine.
  EXPECT_NO_THROW(book.add_buyer(IdentityId{1}, {money(5), money(5), money(3)}));
}

TEST(MultiUnitBookTest, UnitCounts) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9), money(8)});
  book.add_buyer(IdentityId{1}, {money(7)});
  book.add_seller(IdentityId{10}, {money(5), money(4), money(2)});
  EXPECT_EQ(book.buyer_units(), 3u);
  EXPECT_EQ(book.seller_units(), 3u);
}

TEST(MultiUnitBookTest, BuyerUnitsRankedDescending) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9), money(6)});
  book.add_buyer(IdentityId{1}, {money(8), money(7)});
  Rng rng(1);
  const auto units = book.ranked_buyer_units(rng);
  ASSERT_EQ(units.size(), 4u);
  EXPECT_EQ(units[0].value, money(9));
  EXPECT_EQ(units[1].value, money(8));
  EXPECT_EQ(units[2].value, money(7));
  EXPECT_EQ(units[3].value, money(6));
  // Unit indices reflect trade order within an identity.
  EXPECT_EQ(units[0].unit_index, 1u);
  EXPECT_EQ(units[3].identity, IdentityId{0});
  EXPECT_EQ(units[3].unit_index, 2u);
}

TEST(MultiUnitBookTest, SellerAsksAreReversedMarginals) {
  // Paper Section 9: a seller holding three units parts with the first at
  // s_{y,3}, so the ask ladder is the marginal vector reversed.
  MultiUnitBook book;
  book.add_seller(IdentityId{10}, {money(7), money(5), money(2)});
  Rng rng(1);
  const auto asks = book.ranked_seller_units(rng);
  ASSERT_EQ(asks.size(), 3u);
  EXPECT_EQ(asks[0].value, money(2));
  EXPECT_EQ(asks[0].unit_index, 1u);
  EXPECT_EQ(asks[1].value, money(5));
  EXPECT_EQ(asks[2].value, money(7));
}

TEST(MultiUnitBookTest, EqualValuesNeverSplitOneIdentitysRun) {
  // Two buyers each declaring {5, 5}: whatever the tie-break, one buyer's
  // unit 1 must precede its unit 2, and the two units of one identity that
  // are ranked adjacent to the boundary must not interleave such that
  // unit 2 wins while unit 1 loses.
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(5), money(5)});
  book.add_buyer(IdentityId{1}, {money(5), money(5)});
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed);
    const auto units = book.ranked_buyer_units(rng);
    std::map<std::uint64_t, std::size_t> last_seen;
    for (const auto& u : units) {
      auto it = last_seen.find(u.identity.value());
      if (it != last_seen.end()) {
        EXPECT_EQ(u.unit_index, it->second + 1)
            << "identity run interleaved at seed " << seed;
      }
      last_seen[u.identity.value()] = u.unit_index;
    }
  }
}

TEST(MultiUnitOutcomeTest, AggregatesAndLookups) {
  MultiUnitOutcome outcome;
  outcome.buyers.push_back(
      {IdentityId{0}, 2, money(10.5), {money(6), money(4.5)}});
  outcome.sellers.push_back(
      {IdentityId{10}, 2, money(9), {money(4.5), money(4.5)}});
  EXPECT_EQ(outcome.units_traded(), 2u);
  EXPECT_EQ(outcome.buyer_payments(), money(10.5));
  EXPECT_EQ(outcome.seller_receipts(), money(9));
  EXPECT_EQ(outcome.auctioneer_revenue(), money(1.5));
  ASSERT_NE(outcome.buyer(IdentityId{0}), nullptr);
  EXPECT_EQ(outcome.buyer(IdentityId{0})->units, 2u);
  EXPECT_EQ(outcome.buyer(IdentityId{1}), nullptr);
  ASSERT_NE(outcome.seller(IdentityId{10}), nullptr);
  EXPECT_EQ(outcome.seller(IdentityId{99}), nullptr);
}

TEST(MultiUnitValidationTest, CleanOutcomePasses) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9), money(8)});
  book.add_seller(IdentityId{10}, {money(3), money(2)});
  MultiUnitOutcome outcome;
  outcome.buyers.push_back({IdentityId{0}, 2, money(9), {money(4.5), money(4.5)}});
  outcome.sellers.push_back({IdentityId{10}, 2, money(9), {money(4.5), money(4.5)}});
  EXPECT_TRUE(validate_multi_outcome(book, outcome).empty());
}

TEST(MultiUnitValidationTest, DetectsOverAward) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9)});
  book.add_seller(IdentityId{10}, {money(3), money(2)});
  MultiUnitOutcome outcome;
  outcome.buyers.push_back({IdentityId{0}, 2, money(8), {money(4), money(4)}});
  outcome.sellers.push_back({IdentityId{10}, 2, money(8), {money(4), money(4)}});
  const auto errors = validate_multi_outcome(book, outcome);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("declared demand"), std::string::npos);
}

TEST(MultiUnitValidationTest, DetectsAggregateIrViolation) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(5), money(4)});
  book.add_seller(IdentityId{10}, {money(3), money(2)});
  MultiUnitOutcome outcome;
  // Pays 10 for units declared worth 9.
  outcome.buyers.push_back({IdentityId{0}, 2, money(10), {money(5), money(5)}});
  outcome.sellers.push_back({IdentityId{10}, 2, money(10), {money(5), money(5)}});
  const auto errors = validate_multi_outcome(book, outcome);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("aggregate IR"), std::string::npos);
}

TEST(MultiUnitValidationTest, DetectsUnitConservation) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(5)});
  book.add_seller(IdentityId{10}, {money(2)});
  MultiUnitOutcome outcome;
  outcome.buyers.push_back({IdentityId{0}, 1, money(3), {money(3)}});
  const auto errors = validate_multi_outcome(book, outcome);
  bool found = false;
  for (const auto& e : errors) {
    found |= e.find("not conserved") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(MultiUnitSurplusTest, SellerLosesCheapestUnitsFirst) {
  MultiUnitTruth truth;
  truth.buyer_values[IdentityId{0}] = {money(9), money(8)};
  truth.seller_values[IdentityId{10}] = {money(7), money(5), money(2)};

  MultiUnitOutcome outcome;
  outcome.buyers.push_back({IdentityId{0}, 2, money(9), {money(4.5), money(4.5)}});
  outcome.sellers.push_back({IdentityId{10}, 2, money(9), {money(4.5), money(4.5)}});

  const MultiUnitSurplus s = realized_multi_surplus(outcome, truth);
  // Buyer: 9 + 8 - 9 = 8.  Seller: 9 - (2 + 5) = 2.  Auctioneer: 0.
  EXPECT_DOUBLE_EQ(s.except_auctioneer, 10.0);
  EXPECT_DOUBLE_EQ(s.auctioneer, 0.0);
  EXPECT_DOUBLE_EQ(s.total, 10.0);
}

TEST(MultiUnitSurplusTest, EfficientSurplusGreedyMatch) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9), money(6)});
  book.add_buyer(IdentityId{1}, {money(7)});
  book.add_seller(IdentityId{10}, {money(8), money(3)});
  book.add_seller(IdentityId{11}, {money(5)});
  Rng rng(1);
  // Bids: 9, 7, 6; asks: 3, 5, 8.  Matches: (9,3), (7,5); (6,8) fails.
  EXPECT_DOUBLE_EQ(efficient_multi_surplus(book, rng), (9 - 3) + (7 - 5));
}

}  // namespace
}  // namespace fnda
