#include "protocols/pmd.h"

#include <gtest/gtest.h>

#include "core/validation.h"

namespace fnda {
namespace {

// Paper Example 1: buyers 9 > 8 > 7 > 4, sellers 2 < 3 < 4 < 5.
OrderBook example1() {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(5));
  return book;
}

// Paper Example 2: buyers 9 > 8 > 7 > 4, sellers 2 < 3 < 4 < 12.
OrderBook example2() {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(12));
  return book;
}

TEST(PmdTest, Example1TruthfulCondition1) {
  OrderBook book = example1();
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  expect_valid_outcome(book, outcome);

  // k = 3, p0 = (4 + 5) / 2 = 4.5, s(3)=4 <= 4.5 <= b(3)=7: condition 1.
  EXPECT_EQ(outcome.trade_count(), 3u);
  for (const Fill& fill : outcome.fills()) {
    EXPECT_EQ(fill.price, money(4.5));
  }
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
  // The marginal pair (buyer 4, seller 5) does not trade.
  EXPECT_EQ(outcome.units_bought(IdentityId{3}), 0u);
  EXPECT_EQ(outcome.units_sold(IdentityId{13}), 0u);
}

TEST(PmdTest, Example1FalseNameRaisesPrice) {
  // Section 4: a seller adds a false buyer bid of 4.8; p0 becomes 4.9.
  OrderBook book = example1();
  book.add_buyer(IdentityId{99}, money(4.8));
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  expect_valid_outcome(book, outcome);

  EXPECT_EQ(outcome.trade_count(), 3u);
  for (const Fill& fill : outcome.fills()) {
    EXPECT_EQ(fill.price, money(4.9));
  }
  // The fake buyer does not win a unit.
  EXPECT_EQ(outcome.units_bought(IdentityId{99}), 0u);
}

TEST(PmdTest, Example2TruthfulCondition2) {
  OrderBook book = example2();
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  expect_valid_outcome(book, outcome);

  // k = 3 but p0 = (4 + 12) / 2 = 8 > b(3) = 7: condition 2.
  // Buyers (1)-(2) pay b(3) = 7; sellers (1)-(2) get s(3) = 4.
  EXPECT_EQ(outcome.trade_count(), 2u);
  for (const Fill& fill : outcome.fills()) {
    if (fill.side == Side::kBuyer) {
      EXPECT_EQ(fill.price, money(7));
    } else {
      EXPECT_EQ(fill.price, money(4));
    }
  }
  EXPECT_EQ(outcome.auctioneer_revenue(), money(6));  // (k-1)(7-4)
  EXPECT_EQ(outcome.units_sold(IdentityId{12}), 0u);  // seller (3) excluded
}

TEST(PmdTest, Example2FalseNameSellerGainsTrade) {
  // Section 4: seller (3) (value 4) adds a false seller bid of 6.
  // Now condition 1 holds with p0 = (4 + 6) / 2 = 5 and three trades.
  OrderBook book = example2();
  book.add_seller(IdentityId{99}, money(6));
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  expect_valid_outcome(book, outcome);

  EXPECT_EQ(outcome.trade_count(), 3u);
  for (const Fill& fill : outcome.fills()) {
    EXPECT_EQ(fill.price, money(5));
  }
  // Seller (3) now trades: utility 5 - 4 = 1 instead of 0.
  EXPECT_EQ(outcome.units_sold(IdentityId{12}), 1u);
  EXPECT_EQ(outcome.received_by(IdentityId{12}), money(5));
  // The false-name bid itself is not in the trades.
  EXPECT_EQ(outcome.units_sold(IdentityId{99}), 0u);
}

TEST(PmdTest, EmptyBookClearsEmpty) {
  OrderBook book;
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  EXPECT_EQ(outcome.trade_count(), 0u);
}

TEST(PmdTest, NoOverlapNoTrades) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(3));
  book.add_seller(IdentityId{1}, money(10));
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  EXPECT_EQ(outcome.trade_count(), 0u);
}

TEST(PmdTest, SingleCrossingPairUsesSentinels) {
  // One buyer at 10, one seller at 4: k = 1, p0 = (b(2) + s(2)) / 2 =
  // (domain.lowest + domain.highest) / 2 = 500000000 by default, which is
  // outside [s(1), b(1)], so condition 2 fires and k - 1 = 0 trades happen.
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(10));
  book.add_seller(IdentityId{1}, money(4));
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  expect_valid_outcome(book, outcome);
  EXPECT_EQ(outcome.trade_count(), 0u);
}

TEST(PmdTest, BilateralTradeWithTightDomain) {
  // With a tight domain the sentinel midpoint can fall inside [s(1), b(1)]
  // and the single pair trades at p0.
  OrderBook book(ValueDomain{money(0), money(10)});
  book.add_buyer(IdentityId{0}, money(9));
  book.add_seller(IdentityId{1}, money(1));
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  expect_valid_outcome(book, outcome);
  // p0 = (0 + 10) / 2 = 5; 1 <= 5 <= 9.
  ASSERT_EQ(outcome.trade_count(), 1u);
  EXPECT_EQ(outcome.fills().front().price, money(5));
}

TEST(PmdTest, Condition2WhenKEquals1LeavesNoRevenue) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(10));
  book.add_seller(IdentityId{1}, money(4));
  Rng rng(1);
  const Outcome outcome = PmdProtocol().clear(book, rng);
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
}

TEST(PmdTest, DeterministicGivenSeed) {
  OrderBook book = example1();
  Rng rng1(7);
  Rng rng2(7);
  const Outcome a = PmdProtocol().clear(book, rng1);
  const Outcome b = PmdProtocol().clear(book, rng2);
  EXPECT_EQ(a.fills(), b.fills());
}

TEST(PmdTest, NameIsStable) { EXPECT_EQ(PmdProtocol().name(), "pmd"); }

}  // namespace
}  // namespace fnda
