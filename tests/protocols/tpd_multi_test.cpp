#include "protocols/tpd_multi.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

// Paper Example 5: buyer unit values 9 > 8 > 7 > 6 > 4 where buyer x
// declares {9, 8}; seller unit asks 2 < 3 < 4 < 5 < 7; threshold r = 4.5.
struct Example5 {
  MultiUnitBook book;
  const IdentityId x{0};
  const IdentityId b7{1}, b6{2}, b4{3};
  const IdentityId s2{10}, s3{11}, s4{12}, s5{13}, s7{14};

  Example5() {
    book.add_buyer(x, {money(9), money(8)});
    book.add_buyer(b7, {money(7)});
    book.add_buyer(b6, {money(6)});
    book.add_buyer(b4, {money(4)});
    book.add_seller(s2, {money(2)});
    book.add_seller(s3, {money(3)});
    book.add_seller(s4, {money(4)});
    book.add_seller(s5, {money(5)});
    book.add_seller(s7, {money(7)});
  }
};

TEST(TpdMultiTest, Example5PaymentsMatchPaper) {
  Example5 fixture;
  Rng rng(1);
  const MultiUnitOutcome outcome =
      TpdMultiUnitProtocol(money(4.5)).clear(fixture.book, rng);
  EXPECT_TRUE(validate_multi_outcome(fixture.book, outcome).empty());

  // i = 4 unit-bids >= 4.5 (9, 8, 7, 6); j = 3 unit-asks <= 4.5 (2, 3, 4).
  // Case 2: three units trade.
  EXPECT_EQ(outcome.units_traded(), 3u);

  // Sellers each receive the threshold 4.5.
  for (const auto& seller : outcome.sellers) {
    ASSERT_EQ(seller.units, 1u);
    EXPECT_EQ(seller.total_received, money(4.5));
  }
  // Buyer x wins 2 units and pays max(6, 4.5) + max(4, 4.5) = 10.5.
  const auto* x = outcome.buyer(fixture.x);
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->units, 2u);
  EXPECT_EQ(x->total_paid, money(10.5));
  ASSERT_EQ(x->unit_payments.size(), 2u);
  EXPECT_EQ(x->unit_payments[0], money(6));
  EXPECT_EQ(x->unit_payments[1], money(4.5));

  // The buyer declaring 7 wins 1 unit and pays the third-highest value
  // excluding its own, i.e. 6.
  const auto* b7 = outcome.buyer(fixture.b7);
  ASSERT_NE(b7, nullptr);
  EXPECT_EQ(b7->units, 1u);
  EXPECT_EQ(b7->total_paid, money(6));

  // Losing buyers get nothing.
  EXPECT_EQ(outcome.buyer(fixture.b6), nullptr);
  EXPECT_EQ(outcome.buyer(fixture.b4), nullptr);
  // The 5- and 7-ask units do not trade.
  EXPECT_EQ(outcome.seller(fixture.s5), nullptr);
  EXPECT_EQ(outcome.seller(fixture.s7), nullptr);

  // Auctioneer: payments (10.5 + 6) - receipts (3 * 4.5) = 3.
  EXPECT_EQ(outcome.auctioneer_revenue(), money(3));
}

TEST(TpdMultiTest, BalancedCaseAllAtThreshold) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9), money(6)});
  book.add_seller(IdentityId{10}, {money(3), money(2)});
  Rng rng(1);
  // Bids >= 5: {9, 6} (i=2); asks <= 5: {2, 3} (j=2) -> case 1.
  const MultiUnitOutcome outcome =
      TpdMultiUnitProtocol(money(5)).clear(book, rng);
  EXPECT_TRUE(validate_multi_outcome(book, outcome).empty());
  EXPECT_EQ(outcome.units_traded(), 2u);
  EXPECT_EQ(outcome.buyer_payments(), money(10));
  EXPECT_EQ(outcome.seller_receipts(), money(10));
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
}

TEST(TpdMultiTest, ExcessSupplySellersGetGvaPrices) {
  // Mirror image of the Example 5 situation.
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9)});
  book.add_buyer(IdentityId{1}, {money(8)});
  book.add_seller(IdentityId{10}, {money(4), money(2)});  // asks 2, 4
  book.add_seller(IdentityId{11}, {money(3)});
  book.add_seller(IdentityId{12}, {money(5)});
  Rng rng(1);
  // r = 6: i = 2 (bids 9, 8); asks <= 6: {2, 3, 4, 5} (j=4) -> case 3.
  const MultiUnitOutcome outcome =
      TpdMultiUnitProtocol(money(6)).clear(book, rng);
  EXPECT_TRUE(validate_multi_outcome(book, outcome).empty());
  EXPECT_EQ(outcome.units_traded(), 2u);

  // Buyers pay r = 6 each.
  for (const auto& buyer : outcome.buyers) {
    EXPECT_EQ(buyer.total_paid, money(6) * static_cast<std::int64_t>(buyer.units));
  }
  // Winning asks are 2 (seller 10) and 3 (seller 11).
  // Seller 10 sells 1 unit: receives min(s^y_(2), 6) excluding own = asks
  // of others are {3, 5}: s^y_(2) = 5 -> min(5, 6) = 5.
  const auto* s10 = outcome.seller(IdentityId{10});
  ASSERT_NE(s10, nullptr);
  EXPECT_EQ(s10->units, 1u);
  EXPECT_EQ(s10->total_received, money(5));
  // Seller 11 sells 1 unit: others' asks {2, 4, 5}: s^y_(2) = 4 -> 4.
  const auto* s11 = outcome.seller(IdentityId{11});
  ASSERT_NE(s11, nullptr);
  EXPECT_EQ(s11->total_received, money(4));
  EXPECT_EQ(outcome.seller(IdentityId{12}), nullptr);
}

TEST(TpdMultiTest, NoEligibleUnitsNoTrade) {
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(3)});
  book.add_seller(IdentityId{10}, {money(8)});
  Rng rng(1);
  const MultiUnitOutcome outcome =
      TpdMultiUnitProtocol(money(5)).clear(book, rng);
  EXPECT_EQ(outcome.units_traded(), 0u);
}

TEST(TpdMultiTest, EmptyBook) {
  MultiUnitBook book;
  Rng rng(1);
  EXPECT_EQ(TpdMultiUnitProtocol(money(5)).clear(book, rng).units_traded(), 0u);
}

TEST(TpdMultiTest, SingleUnitDeclarationsMatchSingleUnitTpd) {
  // With every declaration a single unit, the multi-unit protocol must
  // reproduce the single-unit TPD outcome (prices and trade count).
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9)});
  book.add_buyer(IdentityId{1}, {money(8)});
  book.add_buyer(IdentityId{2}, {money(7)});
  book.add_buyer(IdentityId{3}, {money(4)});
  book.add_seller(IdentityId{10}, {money(2)});
  book.add_seller(IdentityId{11}, {money(3)});
  book.add_seller(IdentityId{12}, {money(4)});
  book.add_seller(IdentityId{13}, {money(5)});
  Rng rng(1);
  const MultiUnitOutcome outcome =
      TpdMultiUnitProtocol(money(4.5)).clear(book, rng);
  // Example 3: case 1, three trades at 4.5 on both sides.
  EXPECT_EQ(outcome.units_traded(), 3u);
  EXPECT_EQ(outcome.buyer_payments(), money(13.5));
  EXPECT_EQ(outcome.seller_receipts(), money(13.5));
}

TEST(TpdMultiTest, WinningBuyerWithAllUnitsAboveEveryoneUsesThresholdFloor) {
  // A buyer so strong that competitors run out: missing competitor ranks
  // price at the threshold floor r.
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9), money(9), money(9)});
  book.add_seller(IdentityId{10}, {money(1)});
  book.add_seller(IdentityId{11}, {money(2)});
  book.add_seller(IdentityId{12}, {money(3)});
  Rng rng(1);
  // i = 3, j = 3 at r = 5?  asks {1,2,3} <= 5 -> j = 3; bids {9,9,9} -> i=3.
  // Balanced case: everything trades at r.
  const MultiUnitOutcome balanced =
      TpdMultiUnitProtocol(money(5)).clear(book, rng);
  EXPECT_EQ(balanced.units_traded(), 3u);
  EXPECT_EQ(balanced.buyer_payments(), money(15));

  // Add a low extra bid to force case 2 (i > j): the buyer's GVA terms
  // all fall back to max(competitor-or-nothing, r).
  book.add_buyer(IdentityId{1}, {money(6)});
  Rng rng2(1);
  const MultiUnitOutcome excess =
      TpdMultiUnitProtocol(money(5)).clear(book, rng2);
  EXPECT_TRUE(validate_multi_outcome(book, excess).empty());
  EXPECT_EQ(excess.units_traded(), 3u);
  const auto* strong = excess.buyer(IdentityId{0});
  ASSERT_NE(strong, nullptr);
  EXPECT_EQ(strong->units, 3u);
  // Only competitor value is 6: terms l=1..3 are max(6,5), r, r = 6+5+5.
  EXPECT_EQ(strong->total_paid, money(16));
}

}  // namespace
}  // namespace fnda
