// Differential and metamorphic property tests across protocols.
//
// These catch the bug classes unit tests miss: divergence between the
// public clear() and the deterministic clear_sorted() cores, sensitivity
// to submission order, and violations of scale/translation symmetries the
// protocol definitions imply.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/validation.h"
#include "mechanism/properties.h"
#include "protocols/efficient.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"
#include "protocols/vcg.h"

namespace fnda {
namespace {

InstanceSpec fuzz_spec() {
  InstanceSpec spec;
  spec.min_buyers = 0;
  spec.max_buyers = 15;
  spec.min_sellers = 0;
  spec.max_sellers = 15;
  return spec;
}

TEST(FuzzTest, ClearMatchesClearSorted) {
  // The Rng consumed by clear() is exactly the SortedBook construction's;
  // feeding the same stream to an explicit SortedBook must reproduce the
  // outcome bit for bit.
  Rng rng(0xf022);
  for (int run = 0; run < 300; ++run) {
    const SingleUnitInstance instance = random_instance(fuzz_spec(), rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    const std::uint64_t seed = rng();

    {
      Rng a(seed);
      Rng b(seed);
      const SortedBook sorted(market.book, b);
      EXPECT_EQ(PmdProtocol().clear(market.book, a).fills(),
                PmdProtocol::clear_sorted(sorted).fills());
    }
    {
      Rng a(seed);
      Rng b(seed);
      const SortedBook sorted(market.book, b);
      EXPECT_EQ(TpdProtocol(money(50)).clear(market.book, a).fills(),
                TpdProtocol::clear_sorted(sorted, money(50)).fills());
    }
    {
      Rng a(seed);
      Rng b(seed);
      const SortedBook sorted(market.book, b);
      EXPECT_EQ(EfficientClearing().clear(market.book, a).fills(),
                EfficientClearing::clear_sorted(sorted).fills());
    }
    {
      Rng a(seed);
      Rng b(seed);
      const SortedBook sorted(market.book, b);
      EXPECT_EQ(VcgDoubleAuction().clear(market.book, a).fills(),
                VcgDoubleAuction::clear_sorted(sorted).fills());
    }
  }
}

/// Fills reduced to (identity -> price) sets so submission order and
/// tie-break permutations don't matter.
std::multiset<std::tuple<bool, std::uint64_t, std::int64_t>> fill_set(
    const Outcome& outcome) {
  std::multiset<std::tuple<bool, std::uint64_t, std::int64_t>> set;
  for (const Fill& fill : outcome.fills()) {
    set.insert({fill.side == Side::kBuyer, fill.identity.value(),
                fill.price.micros()});
  }
  return set;
}

TEST(FuzzTest, SubmissionOrderIrrelevantWithoutTies) {
  // Distinct values (micro-resolution uniform draws): permuting the book
  // must not change who trades at what price.
  Rng rng(0xf044);
  for (int run = 0; run < 200; ++run) {
    const SingleUnitInstance instance = random_instance(fuzz_spec(), rng);

    OrderBook forward;
    OrderBook backward;
    for (std::size_t i = 0; i < instance.buyer_values.size(); ++i) {
      forward.add_buyer(IdentityId{i}, instance.buyer_values[i]);
    }
    for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
      forward.add_seller(IdentityId{1000 + j}, instance.seller_values[j]);
    }
    for (std::size_t j = instance.seller_values.size(); j-- > 0;) {
      backward.add_seller(IdentityId{1000 + j}, instance.seller_values[j]);
    }
    for (std::size_t i = instance.buyer_values.size(); i-- > 0;) {
      backward.add_buyer(IdentityId{i}, instance.buyer_values[i]);
    }

    for (const Money r : {money(25), money(50), money(75)}) {
      Rng a(run);
      Rng b(run * 31 + 7);
      EXPECT_EQ(fill_set(TpdProtocol(r).clear(forward, a)),
                fill_set(TpdProtocol(r).clear(backward, b)));
    }
    Rng a(run);
    Rng b(run * 131 + 1);
    EXPECT_EQ(fill_set(PmdProtocol().clear(forward, a)),
              fill_set(PmdProtocol().clear(backward, b)));
  }
}

TEST(FuzzTest, TpdIgnoresIneligibleDeclarations) {
  // Adding a buyer below r or a seller above r changes nothing.
  Rng rng(0xf055);
  const Money r = money(50);
  for (int run = 0; run < 200; ++run) {
    const SingleUnitInstance instance = random_instance(fuzz_spec(), rng);
    const InstantiatedMarket market = instantiate_truthful(instance);

    OrderBook padded(instance.domain);
    for (const BidEntry& e : market.book.buyers()) {
      padded.add_buyer(e.identity, e.value);
    }
    for (const BidEntry& e : market.book.sellers()) {
      padded.add_seller(e.identity, e.value);
    }
    padded.add_buyer(IdentityId{777}, rng.uniform_money(money(0), money(49)));
    padded.add_seller(IdentityId{888},
                      rng.uniform_money(money(51), money(100)));

    Rng a(run);
    Rng b(run * 17 + 3);
    EXPECT_EQ(fill_set(TpdProtocol(r).clear(market.book, a)),
              fill_set(TpdProtocol(r).clear(padded, b)));
  }
}

TEST(FuzzTest, TpdTranslationCovariance) {
  // Shifting every value and the threshold by a constant shifts every
  // price by that constant and preserves the allocation.
  Rng rng(0xf066);
  const Money shift = money(13);
  for (int run = 0; run < 150; ++run) {
    InstanceSpec spec = fuzz_spec();
    const SingleUnitInstance instance = random_instance(spec, rng);

    OrderBook base;
    OrderBook shifted;
    for (std::size_t i = 0; i < instance.buyer_values.size(); ++i) {
      base.add_buyer(IdentityId{i}, instance.buyer_values[i]);
      shifted.add_buyer(IdentityId{i}, instance.buyer_values[i] + shift);
    }
    for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
      base.add_seller(IdentityId{1000 + j}, instance.seller_values[j]);
      shifted.add_seller(IdentityId{1000 + j},
                         instance.seller_values[j] + shift);
    }

    Rng a(run);
    Rng b(run);
    const Outcome base_outcome = TpdProtocol(money(50)).clear(base, a);
    const Outcome shifted_outcome =
        TpdProtocol(money(50) + shift).clear(shifted, b);

    ASSERT_EQ(base_outcome.trade_count(), shifted_outcome.trade_count());
    auto base_fills = fill_set(base_outcome);
    auto expected = fill_set(shifted_outcome);
    // Shift the base fills' prices up and compare.
    std::multiset<std::tuple<bool, std::uint64_t, std::int64_t>> adjusted;
    for (auto [is_buyer, identity, price] : base_fills) {
      adjusted.insert({is_buyer, identity, price + shift.micros()});
    }
    EXPECT_EQ(adjusted, expected);
  }
}

TEST(FuzzTest, ExtremeDomainValuesHandled) {
  // Bids exactly at the domain edges exercise the sentinel arithmetic.
  OrderBook book;  // default domain [0, 1e9]
  book.add_buyer(IdentityId{0}, Money::from_units(1'000'000'000));
  book.add_buyer(IdentityId{1}, Money::from_units(0));
  book.add_seller(IdentityId{2}, Money::from_units(0));
  book.add_seller(IdentityId{3}, Money::from_units(1'000'000'000));

  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const Outcome tpd = TpdProtocol(money(50)).clear(book, rng);
    expect_valid_outcome(book, tpd);
    Rng rng2(seed);
    const Outcome pmd = PmdProtocol().clear(book, rng2);
    expect_valid_outcome(book, pmd);
    Rng rng3(seed);
    const Outcome vcg = VcgDoubleAuction().clear(book, rng3);
    expect_valid_outcome(book, vcg, ValidationOptions{true});
  }
}

TEST(FuzzTest, AllTiesBookStaysValidUnderEveryProtocol) {
  // Every declaration identical: maximal tie-breaking stress.
  OrderBook book;
  for (std::uint64_t i = 0; i < 12; ++i) {
    book.add_buyer(IdentityId{i}, money(50));
    book.add_seller(IdentityId{100 + i}, money(50));
  }
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const Outcome outcome = TpdProtocol(money(50)).clear(book, rng);
    expect_valid_outcome(book, outcome);
    EXPECT_EQ(outcome.trade_count(), 12u);  // i == j == 12, case 1
    Rng rng2(seed);
    expect_valid_outcome(book, PmdProtocol().clear(book, rng2));
  }
}

}  // namespace
}  // namespace fnda
