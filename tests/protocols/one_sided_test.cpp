#include "protocols/one_sided.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"

namespace fnda {
namespace {

QuantityValuation concave(std::uint64_t id, std::vector<double> marginals) {
  QuantityValuation bid;
  bid.identity = IdentityId{id};
  bid.values.push_back(Money{});
  Money total;
  for (double m : marginals) {
    total += money(m);
    bid.values.push_back(total);
  }
  return bid;
}

TEST(VickreyTest, WinnerPaysSecondPrice) {
  const VickreyResult result = run_vickrey(
      {{IdentityId{1}, money(10)}, {IdentityId{2}, money(7)},
       {IdentityId{3}, money(4)}});
  EXPECT_TRUE(result.sold);
  EXPECT_EQ(result.winner, IdentityId{1});
  EXPECT_EQ(result.price, money(7));
}

TEST(VickreyTest, SingleBidderPaysZeroReserve) {
  const VickreyResult result = run_vickrey({{IdentityId{1}, money(10)}});
  EXPECT_TRUE(result.sold);
  EXPECT_EQ(result.price, Money{});
}

TEST(VickreyTest, EmptyAuctionDoesNotSell) {
  EXPECT_FALSE(run_vickrey({}).sold);
}

TEST(VickreyTest, TieGoesToEarlierBid) {
  const VickreyResult result = run_vickrey(
      {{IdentityId{1}, money(9)}, {IdentityId{2}, money(9)}});
  EXPECT_EQ(result.winner, IdentityId{1});
  EXPECT_EQ(result.price, money(9));
}

TEST(VickreyTest, FalseNameBidsNeverHelpSingleUnitDemand) {
  // Extra identities from the same account can only become competing
  // bids: the winner's price is the best *other* bid, so adding your own
  // fake can only raise it or change nothing.
  const std::vector<std::pair<IdentityId, Money>> base = {
      {IdentityId{1}, money(10)}, {IdentityId{2}, money(7)}};
  const VickreyResult honest = run_vickrey(base);
  EXPECT_EQ(honest.price, money(7));
  // Bidder 1 adds a fake at 9:
  auto attacked = base;
  attacked.push_back({IdentityId{99}, money(9)});
  const VickreyResult with_fake = run_vickrey(attacked);
  EXPECT_EQ(with_fake.winner, IdentityId{1});
  EXPECT_EQ(with_fake.price, money(9));  // strictly worse for the attacker
}

TEST(GvaTest, ValidatesBids) {
  GeneralizedVickreyAuction gva(2);
  QuantityValuation bad;
  bad.identity = IdentityId{0};
  bad.values = {money(1), money(2)};  // values[0] != 0
  EXPECT_THROW(gva.run({bad}), std::invalid_argument);
  bad.values = {money(0), money(5), money(3)};  // decreasing total
  EXPECT_THROW(gva.run({bad}), std::invalid_argument);
  EXPECT_THROW(GeneralizedVickreyAuction(0), std::invalid_argument);
}

TEST(GvaTest, SingleUnitMatchesVickrey) {
  GeneralizedVickreyAuction gva(1);
  const OneSidedResult result = gva.run({concave(1, {10}), concave(2, {7}),
                                         concave(3, {4})});
  ASSERT_EQ(result.awards.size(), 1u);
  EXPECT_EQ(result.awards[0].identity, IdentityId{1});
  EXPECT_EQ(result.awards[0].units, 1u);
  EXPECT_EQ(result.awards[0].payment, money(7));
}

TEST(GvaTest, EfficientAllocationTwoUnits) {
  GeneralizedVickreyAuction gva(2);
  // Bidder 1 marginals {9, 2}; bidder 2 marginals {7}.
  const OneSidedResult result = gva.run({concave(1, {9, 2}),
                                         concave(2, {7})});
  // Efficient: 1 unit each (9 + 7 = 16 > 9 + 2 = 11).
  const auto* first = result.award_for(IdentityId{1});
  const auto* second = result.award_for(IdentityId{2});
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->units, 1u);
  EXPECT_EQ(second->units, 1u);
  // Pivots: without 1, bidder 2 still takes 1 unit (7): pays 7 - 7 = 0?
  // No: without bidder 1, bidder 2 takes only 1 unit (its capacity), so
  // others_without = 7, others_with = 7 -> bidder 1 pays 0.  Without
  // bidder 2, bidder 1 takes both units (11): bidder 2 pays 11 - 9 = 2.
  EXPECT_EQ(first->payment, money(0));
  EXPECT_EQ(second->payment, money(2));
  EXPECT_EQ(result.revenue, money(2));
  EXPECT_DOUBLE_EQ(result.declared_welfare, 16.0);
}

TEST(GvaTest, ComplementsAllocatedCorrectly) {
  GeneralizedVickreyAuction gva(2);
  QuantityValuation all_or_nothing;
  all_or_nothing.identity = IdentityId{1};
  all_or_nothing.values = {money(0), money(0), money(100)};
  const OneSidedResult result =
      gva.run({all_or_nothing, concave(2, {70})});
  // 100 > 70: the package bidder takes both units, paying the displaced
  // 70.
  ASSERT_EQ(result.awards.size(), 1u);
  EXPECT_EQ(result.awards[0].identity, IdentityId{1});
  EXPECT_EQ(result.awards[0].units, 2u);
  EXPECT_EQ(result.awards[0].payment, money(70));
}

TEST(GvaTest, Sym99FalseNameAttackWithComplements) {
  // The Sakurai-Yokoo-Matsubara boundary, reproduced: bidder 1 wants the
  // PAIR for 100 (increasing marginals); bidder 2 wants one unit at 70.
  // Truthful: bidder 2 loses, utility 0.
  GeneralizedVickreyAuction gva(2);
  QuantityValuation package;
  package.identity = IdentityId{1};
  package.values = {money(0), money(0), money(100)};

  const OneSidedResult honest = gva.run({package, concave(2, {70})});
  EXPECT_EQ(honest.award_for(IdentityId{2}), nullptr);

  // Attack: bidder 2 splits into two identities bidding 70 for one unit
  // each.  Combined they displace the package (140 > 100); each pays the
  // pivot 100 - 70 = 30.  Bidder 2 holds two units (values only one at
  // 70) and paid 60: utility 70 - 60 = 10 > 0.  GVA is NOT false-name
  // proof once any participant has increasing marginal utilities.
  const OneSidedResult attacked =
      gva.run({package, concave(2, {70}), concave(99, {70})});
  EXPECT_EQ(attacked.award_for(IdentityId{1}), nullptr);
  const auto* real = attacked.award_for(IdentityId{2});
  const auto* fake = attacked.award_for(IdentityId{99});
  ASSERT_NE(real, nullptr);
  ASSERT_NE(fake, nullptr);
  EXPECT_EQ(real->payment, money(30));
  EXPECT_EQ(fake->payment, money(30));
  const double attack_utility = 70.0 - 30.0 - 30.0;
  EXPECT_GT(attack_utility, 0.0);
}

TEST(GvaTest, DecreasingMarginalsSplitNeverHelps) {
  // With concave valuations (the Section 9 precondition), splitting a
  // demand across identities never lowers total GVA payments.
  Rng rng(0x6a5);
  GeneralizedVickreyAuction gva(4);
  for (int run = 0; run < 120; ++run) {
    // Manipulator: two-unit concave demand m1 >= m2.
    double m1 = rng.uniform_double(10, 100);
    double m2 = rng.uniform_double(0, m1);
    // Two concave rivals.
    auto rival = [&rng](std::uint64_t id) {
      double r1 = rng.uniform_double(0, 100);
      double r2 = rng.uniform_double(0, r1);
      return concave(id, {r1, r2});
    };
    const QuantityValuation rival1 = rival(10);
    const QuantityValuation rival2 = rival(11);

    auto utility = [&](const OneSidedResult& result,
                       std::initializer_list<std::uint64_t> ids) {
      std::size_t units = 0;
      double paid = 0.0;
      for (std::uint64_t id : ids) {
        if (const auto* award = result.award_for(IdentityId{id})) {
          units += award->units;
          paid += award->payment.to_double();
        }
      }
      const double value = units >= 2 ? m1 + m2 : (units == 1 ? m1 : 0.0);
      return value - paid;
    };

    const OneSidedResult truthful =
        gva.run({concave(1, {m1, m2}), rival1, rival2});
    const OneSidedResult split =
        gva.run({concave(1, {m1}), concave(2, {m2}), rival1, rival2});

    EXPECT_LE(utility(split, {1, 2}), utility(truthful, {1}) + 1e-9)
        << "run " << run << " m1=" << m1 << " m2=" << m2;
  }
}

TEST(GvaTest, MisreportNeverHelpsOnRandomConcaveInstances) {
  // Dominant-strategy IC spot check: uniform scaling misreports of the
  // whole valuation never beat truth.
  Rng rng(0x6a6);
  GeneralizedVickreyAuction gva(3);
  for (int run = 0; run < 80; ++run) {
    double m1 = rng.uniform_double(10, 100);
    double m2 = rng.uniform_double(0, m1);
    auto rival = [&rng](std::uint64_t id) {
      double r1 = rng.uniform_double(0, 100);
      double r2 = rng.uniform_double(0, r1);
      return concave(id, {r1, r2});
    };
    const QuantityValuation rival1 = rival(10);
    const QuantityValuation rival2 = rival(11);

    auto utility_of = [&](double scale) {
      const OneSidedResult result =
          gva.run({concave(1, {m1 * scale, m2 * scale}), rival1, rival2});
      const auto* award = result.award_for(IdentityId{1});
      if (award == nullptr) return 0.0;
      const double value = award->units >= 2 ? m1 + m2 : m1;
      return value - award->payment.to_double();
    };
    const double truthful = utility_of(1.0);
    for (double scale : {0.0, 0.25, 0.5, 0.8, 1.25, 2.0, 5.0}) {
      EXPECT_LE(utility_of(scale), truthful + 1e-9)
          << "run " << run << " scale " << scale;
    }
  }
}

TEST(QuantityValuationTest, MarginalsClassification) {
  EXPECT_TRUE(concave(1, {9, 5, 2}).has_decreasing_marginals());
  EXPECT_TRUE(concave(1, {5, 5, 5}).has_decreasing_marginals());
  QuantityValuation complements;
  complements.identity = IdentityId{1};
  complements.values = {money(0), money(0), money(100)};
  EXPECT_FALSE(complements.has_decreasing_marginals());
  EXPECT_EQ(complements.value_of(1), money(0));
  EXPECT_EQ(complements.value_of(2), money(100));
  EXPECT_EQ(complements.value_of(99), money(100));  // clamps to capacity
}

}  // namespace
}  // namespace fnda
