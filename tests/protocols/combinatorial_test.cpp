#include "protocols/combinatorial.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

// Goods: A = bit 0, B = bit 1, C = bit 2.
constexpr Bundle A = 1, B = 2, C = 4;

ReservationPriceAuction tens() {
  return ReservationPriceAuction({money(10), money(10), money(10)});
}

TEST(ReservationAuctionTest, ValidatesConstruction) {
  EXPECT_THROW(ReservationPriceAuction{{}}, std::invalid_argument);
  const std::vector<Money> too_many(21, money(1));
  EXPECT_THROW(ReservationPriceAuction{too_many}, std::invalid_argument);
}

TEST(ReservationAuctionTest, BundlePriceSums) {
  ReservationPriceAuction auction({money(10), money(20), money(5)});
  EXPECT_EQ(auction.bundle_price(A), money(10));
  EXPECT_EQ(auction.bundle_price(A | B), money(30));
  EXPECT_EQ(auction.bundle_price(A | B | C), money(35));
}

TEST(ReservationAuctionTest, RejectsBadBundles) {
  auto auction = tens();
  EXPECT_THROW(auction.run({{IdentityId{1}, 0, money(50)}}),
               std::invalid_argument);
  EXPECT_THROW(auction.run({{IdentityId{1}, 1u << 5, money(50)}}),
               std::invalid_argument);
}

TEST(ReservationAuctionTest, IneligibleBidsNeverWin) {
  auto auction = tens();
  // Value 15 < reservation sum 20 for {A,B}: ineligible.
  const CombinatorialResult result =
      auction.run({{IdentityId{1}, A | B, money(15)}});
  EXPECT_TRUE(result.awards.empty());
  EXPECT_EQ(result.eligible_bids, 0u);
}

TEST(ReservationAuctionTest, WinnerPaysReservationSumNotDeclaredValue) {
  auto auction = tens();
  const CombinatorialResult result =
      auction.run({{IdentityId{1}, A | B, money(95)}});
  ASSERT_EQ(result.awards.size(), 1u);
  EXPECT_EQ(result.awards[0].payment, money(20));  // not 95
  EXPECT_EQ(result.revenue, money(20));
}

TEST(ReservationAuctionTest, RevenueMaximisingPacking) {
  auto auction = tens();
  // Revenue depends only on the goods covered: {A,B}+{C} and
  // {A}+{B}+{C} both sell everything for 30; the earlier bundle bid
  // keeps its slot on the tie.
  const CombinatorialResult result = auction.run({
      {IdentityId{1}, A | B, money(50)},
      {IdentityId{2}, A, money(12)},
      {IdentityId{3}, B, money(12)},
      {IdentityId{4}, C, money(12)},
  });
  EXPECT_EQ(result.revenue, money(30));
  EXPECT_NE(result.award_for(IdentityId{1}), nullptr);
  EXPECT_EQ(result.award_for(IdentityId{2}), nullptr);
  EXPECT_EQ(result.award_for(IdentityId{3}), nullptr);
  EXPECT_NE(result.award_for(IdentityId{4}), nullptr);
}

TEST(ReservationAuctionTest, PartialCoverageLosesToFullCoverage) {
  auto auction = tens();
  // The bundle {A,B} is ineligible (value 15 < 20); the singles cover
  // {B, C} for revenue 20 — the only feasible packing.
  const CombinatorialResult result = auction.run({
      {IdentityId{1}, A | B, money(15)},  // ineligible
      {IdentityId{3}, B, money(12)},
      {IdentityId{4}, C, money(12)},
  });
  EXPECT_EQ(result.revenue, money(20));
  EXPECT_EQ(result.award_for(IdentityId{1}), nullptr);
  EXPECT_NE(result.award_for(IdentityId{3}), nullptr);
  EXPECT_NE(result.award_for(IdentityId{4}), nullptr);
}

TEST(ReservationAuctionTest, DeclaredValueCannotBuyPriority) {
  auto auction = tens();
  // Both want {A}; the EARLIER bid wins regardless of declared values.
  const CombinatorialResult result = auction.run({
      {IdentityId{1}, A, money(11)},
      {IdentityId{2}, A, money(99)},
  });
  ASSERT_EQ(result.awards.size(), 1u);
  EXPECT_EQ(result.awards[0].identity, IdentityId{1});
}

TEST(ReservationAuctionTest, OverReportingToWinIsALoss) {
  // A bidder whose true value (15) is below its bundle's posted price
  // (20) can become eligible by over-reporting — and then pays 20 for a
  // bundle worth 15: utility -5 versus 0 for truth-telling.
  auto auction = tens();
  const CombinatorialResult lied =
      auction.run({{IdentityId{1}, A | B, money(25)}});
  ASSERT_EQ(lied.awards.size(), 1u);
  const double utility = 15.0 - lied.awards[0].payment.to_double();
  EXPECT_LT(utility, 0.0);
}

TEST(ReservationAuctionTest, FalseNameSplitPaysTheSameTotal) {
  // Splitting {A,B} across two identities covers the same goods at the
  // same posted prices: total payment is identical, nothing gained.
  auto auction = tens();
  const CombinatorialResult whole =
      auction.run({{IdentityId{1}, A | B, money(50)}});
  const CombinatorialResult split = auction.run({
      {IdentityId{1}, A, money(25)},
      {IdentityId{2}, B, money(25)},
  });
  Money whole_paid = whole.awards[0].payment;
  Money split_paid;
  for (const auto& award : split.awards) split_paid += award.payment;
  EXPECT_EQ(whole_paid, split_paid);
}

TEST(ReservationAuctionTest, FakeBidToFlipThePackingBackfires) {
  // Rival wants {A,B}; the attacker truly wants only {A} (worth 15).
  // Without help, the rival's bundle wins (covers both goods first).
  // The attacker adds a fake {B} bid so that {A}+{B} also covers both
  // goods — but the rival submitted first and strict improvement keeps
  // it; and even when the attacker submits first, winning means paying
  // the posted price for B, which it does not value: never profitable.
  auto auction = tens();
  const CombinatorialResult honest = auction.run({
      {IdentityId{9}, A | B, money(40)},  // rival first
      {IdentityId{1}, A, money(15)},
  });
  EXPECT_EQ(honest.award_for(IdentityId{1}), nullptr);

  const CombinatorialResult attacked = auction.run({
      {IdentityId{9}, A | B, money(40)},
      {IdentityId{1}, A, money(15)},
      {IdentityId{2}, B, money(15)},  // attacker's false name
  });
  // Tie on revenue (20 either way): the earlier rival still wins.
  EXPECT_EQ(attacked.award_for(IdentityId{1}), nullptr);
  EXPECT_EQ(attacked.award_for(IdentityId{2}), nullptr);

  // Attacker-first ordering: it wins A and its fake wins B — and the
  // position nets 15 - 10 - 10 < 0.  Posted prices make packing games
  // unprofitable.
  const CombinatorialResult attacker_first = auction.run({
      {IdentityId{1}, A, money(15)},
      {IdentityId{2}, B, money(15)},
      {IdentityId{9}, A | B, money(40)},
  });
  ASSERT_NE(attacker_first.award_for(IdentityId{1}), nullptr);
  ASSERT_NE(attacker_first.award_for(IdentityId{2}), nullptr);
  const double net = 15.0 - 10.0 - 10.0;
  EXPECT_LT(net, 0.0);
}

TEST(ReservationAuctionTest, ExhaustiveDeviationsNeverBeatTruthWhenEligible) {
  // A small exhaustive search over the attacker's strategy space: any
  // subset of {own bundle, sub-bundles, unrelated goods} with values in
  // {just-eligible, inflated}.  The attacker truly values {A,B} at 35
  // (posted price 20): truthful utility 15 when it wins.
  ReservationPriceAuction auction({money(10), money(10), money(30)});
  const std::vector<BundleBid> rivals = {
      {IdentityId{9}, B | C, money(45)},
  };
  const double true_value = 35.0;
  const Bundle want = A | B;

  auto utility_of = [&](const std::vector<BundleBid>& own) {
    std::vector<BundleBid> bids = rivals;
    for (const BundleBid& bid : own) bids.push_back(bid);
    const CombinatorialResult result = auction.run(bids);
    Bundle got = 0;
    double paid = 0.0;
    for (const auto& award : result.awards) {
      if (award.identity.value() >= 100) {
        got |= award.bundle;
        paid += award.payment.to_double();
      }
    }
    // The attacker values only the full {A,B} package at 35 (single-
    // minded); partial coverage is worth 0.
    const double value = (got & want) == want ? true_value : 0.0;
    return value - paid;
  };

  const double truthful =
      utility_of({{IdentityId{100}, want, money(true_value)}});
  const Bundle candidates[] = {A, B, C, A | B, A | C, B | C, A | B | C};
  double best = truthful;
  for (Bundle first : candidates) {
    for (double v1 : {20.0, 60.0}) {
      best = std::max(best, utility_of({{IdentityId{100}, first, money(v1)}}));
      for (Bundle second : candidates) {
        for (double v2 : {20.0, 60.0}) {
          best = std::max(
              best, utility_of({{IdentityId{100}, first, money(v1)},
                                {IdentityId{101}, second, money(v2)}}));
        }
      }
    }
  }
  EXPECT_LE(best, truthful + 1e-9)
      << "a deviation beat truth in the reservation-price auction";
}

}  // namespace
}  // namespace fnda
