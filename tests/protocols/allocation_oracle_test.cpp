// Differential tests of the two dynamic-programming allocators against
// brute-force enumeration on small random instances.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "protocols/combinatorial.h"
#include "protocols/one_sided.h"

namespace fnda {
namespace {

// ---------- GVA welfare vs exhaustive quantity assignment ----------

double brute_force_welfare(const std::vector<QuantityValuation>& bids,
                           std::size_t units) {
  double best = 0.0;
  std::function<void(std::size_t, std::size_t, double)> recurse =
      [&](std::size_t index, std::size_t remaining, double welfare) {
        if (index == bids.size()) {
          best = std::max(best, welfare);
          return;
        }
        const std::size_t cap = std::min(bids[index].capacity(), remaining);
        for (std::size_t q = 0; q <= cap; ++q) {
          recurse(index + 1, remaining - q,
                  welfare + bids[index].values[q].to_double());
        }
      };
  recurse(0, units, 0.0);
  return best;
}

QuantityValuation random_valuation(std::uint64_t id, Rng& rng,
                                   bool allow_complements) {
  QuantityValuation bid;
  bid.identity = IdentityId{id};
  bid.values.push_back(Money{});
  const std::size_t capacity = 1 + rng.below(3);
  Money total;
  Money previous_marginal = Money::from_units(1'000);
  for (std::size_t q = 0; q < capacity; ++q) {
    Money marginal = rng.uniform_money(money(0), money(50));
    if (!allow_complements && marginal > previous_marginal) {
      marginal = previous_marginal;
    }
    previous_marginal = marginal;
    total += marginal;
    bid.values.push_back(total);
  }
  return bid;
}

TEST(AllocationOracleTest, GvaWelfareMatchesBruteForce) {
  Rng rng(0x07ac1e);
  for (int run = 0; run < 200; ++run) {
    const std::size_t units = 1 + rng.below(4);
    const std::size_t bidders = 1 + rng.below(4);
    std::vector<QuantityValuation> bids;
    for (std::size_t b = 0; b < bidders; ++b) {
      bids.push_back(random_valuation(b, rng, /*allow_complements=*/true));
    }
    const GeneralizedVickreyAuction gva(units);
    const OneSidedResult result = gva.run(bids);
    EXPECT_NEAR(result.declared_welfare, brute_force_welfare(bids, units),
                1e-9)
        << "run " << run;
    // Awards are consistent with the welfare: units within capacity and
    // total units within supply.
    std::size_t total_units = 0;
    for (const auto& award : result.awards) {
      total_units += award.units;
      EXPECT_GE(award.payment, Money{});  // pivots are never negative
    }
    EXPECT_LE(total_units, units);
  }
}

TEST(AllocationOracleTest, GvaPaymentsNeverExceedDeclaredValue) {
  // IR on declared values: pivot <= value of the awarded quantity.
  Rng rng(0x07ac2e);
  for (int run = 0; run < 200; ++run) {
    const std::size_t units = 1 + rng.below(4);
    std::vector<QuantityValuation> bids;
    const std::size_t bidders = 2 + rng.below(3);
    for (std::size_t b = 0; b < bidders; ++b) {
      bids.push_back(random_valuation(b, rng, true));
    }
    const OneSidedResult result = GeneralizedVickreyAuction(units).run(bids);
    for (const auto& award : result.awards) {
      const auto& bid = bids[award.identity.value()];
      EXPECT_LE(award.payment.to_double(),
                bid.values[award.units].to_double() + 1e-9)
          << "run " << run;
    }
  }
}

// ---------- Reservation-price packing vs exhaustive subsets ----------

TEST(AllocationOracleTest, PackingRevenueMatchesBruteForce) {
  Rng rng(0x07ac3e);
  for (int run = 0; run < 200; ++run) {
    const std::size_t goods = 2 + rng.below(4);  // 2..5 goods
    std::vector<Money> reservations;
    for (std::size_t g = 0; g < goods; ++g) {
      reservations.push_back(rng.uniform_money(money(1), money(20)));
    }
    const ReservationPriceAuction auction(reservations);

    const std::size_t bid_count = 1 + rng.below(6);
    std::vector<BundleBid> bids;
    for (std::size_t b = 0; b < bid_count; ++b) {
      const Bundle bundle =
          1 + static_cast<Bundle>(rng.below((1u << goods) - 1));
      bids.push_back(BundleBid{IdentityId{b}, bundle,
                               rng.uniform_money(money(0), money(80))});
    }
    const CombinatorialResult result = auction.run(bids);

    // Brute force: every subset of bids, keep conflict-free eligible ones.
    Money best;
    for (std::uint32_t subset = 0; subset < (1u << bid_count); ++subset) {
      Bundle used = 0;
      Money revenue;
      bool valid = true;
      for (std::size_t b = 0; b < bid_count && valid; ++b) {
        if (!((subset >> b) & 1u)) continue;
        if (bids[b].value < auction.bundle_price(bids[b].bundle)) {
          valid = false;  // ineligible
        } else if ((used & bids[b].bundle) != 0) {
          valid = false;  // conflict
        } else {
          used |= bids[b].bundle;
          revenue += auction.bundle_price(bids[b].bundle);
        }
      }
      if (valid && revenue > best) best = revenue;
    }
    EXPECT_EQ(result.revenue, best) << "run " << run;

    // Winners are conflict-free and each paid its posted price.
    Bundle used = 0;
    for (const auto& award : result.awards) {
      EXPECT_EQ(used & award.bundle, 0u);
      used |= award.bundle;
      EXPECT_EQ(award.payment, auction.bundle_price(award.bundle));
    }
  }
}

}  // namespace
}  // namespace fnda
