// Tie-handling semantics (paper footnote 5: random tie-breaking, and
// footnote 7: tied marginal traders are indifferent because their utility
// is zero either way).
#include <gtest/gtest.h>

#include <map>

#include "core/surplus.h"
#include "core/validation.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

TEST(TieHandlingTest, TpdTiedBuyersAtThresholdRotateFairly) {
  // Three buyers at exactly r compete for two seller slots: each should
  // be excluded roughly 1/3 of the time, and whoever trades pays r —
  // zero utility, the footnote-7 indifference.
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(50));
  book.add_buyer(IdentityId{1}, money(50));
  book.add_buyer(IdentityId{2}, money(50));
  book.add_seller(IdentityId{10}, money(10));
  book.add_seller(IdentityId{11}, money(20));

  std::map<std::uint64_t, int> wins;
  constexpr int kRounds = 3000;
  for (int round = 0; round < kRounds; ++round) {
    Rng rng(static_cast<std::uint64_t>(round));
    const Outcome outcome = TpdProtocol(money(50)).clear(book, rng);
    expect_valid_outcome(book, outcome);
    ASSERT_EQ(outcome.trade_count(), 2u);  // i=3 > j=2: case 2
    for (const Fill& fill : outcome.fills()) {
      if (fill.side == Side::kBuyer) {
        // Case 2 buyer price is b(3) = 50 = r: zero utility.
        EXPECT_EQ(fill.price, money(50));
        ++wins[fill.identity.value()];
      }
    }
  }
  ASSERT_EQ(wins.size(), 3u);
  for (const auto& [identity, count] : wins) {
    EXPECT_NEAR(count, 2 * kRounds / 3, 150) << "identity " << identity;
  }
}

TEST(TieHandlingTest, TpdTiedMarginalUtilityIsZeroEitherWay) {
  // The excluded tied buyer earns 0; the included ones also earn 0 (pay
  // exactly their value) — so no realization of the tie-break changes
  // anyone's utility, which is why the IC proof tolerates random ties.
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(50));
  book.add_buyer(IdentityId{1}, money(50));
  book.add_seller(IdentityId{10}, money(10));
  TrueValuations truth;
  truth.buyer_values = {{IdentityId{0}, money(50)}, {IdentityId{1}, money(50)}};
  truth.seller_values = {{IdentityId{10}, money(10)}};

  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    const Outcome outcome = TpdProtocol(money(50)).clear(book, rng);
    const SurplusReport report = realized_surplus(outcome, truth);
    EXPECT_NEAR(report.buyers, 0.0, 1e-12) << "seed " << seed;
  }
}

TEST(TieHandlingTest, PmdTiedAtKBoundary) {
  // b(k) == s(k): the marginal pair has zero surplus; whichever way the
  // protocol resolves, the outcome stays valid and surplus-equal.
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(5));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(5));
  TrueValuations truth;
  truth.buyer_values = {{IdentityId{0}, money(9)}, {IdentityId{1}, money(5)}};
  truth.seller_values = {{IdentityId{10}, money(2)},
                         {IdentityId{11}, money(5)}};

  double first_surplus = -1.0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    const Outcome outcome = PmdProtocol().clear(book, rng);
    expect_valid_outcome(book, outcome);
    const double surplus = realized_surplus(outcome, truth).total;
    if (first_surplus < 0.0) first_surplus = surplus;
    EXPECT_DOUBLE_EQ(surplus, first_surplus) << "seed " << seed;
  }
}

TEST(TieHandlingTest, IdenticalSellersShareTradesUnderPmd) {
  // b = [9, 8], s = [3, 3]: PMD condition 2 fires with one trade; the
  // trading seller is the rank-1 of two tied asks.
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_seller(IdentityId{10}, money(3));
  book.add_seller(IdentityId{11}, money(3));

  std::map<std::uint64_t, int> sales;
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    Rng rng(static_cast<std::uint64_t>(round));
    const Outcome outcome = PmdProtocol().clear(book, rng);
    for (const Fill& fill : outcome.fills()) {
      if (fill.side == Side::kSeller) ++sales[fill.identity.value()];
    }
  }
  // Whatever PMD does with this book, the two identical sellers must be
  // treated symmetrically across tie-break draws.
  if (!sales.empty()) {
    ASSERT_EQ(sales.size(), 2u);
    const int a = sales.begin()->second;
    const int b = std::next(sales.begin())->second;
    EXPECT_NEAR(a, b, (a + b) / 8 + 100);
  }
}

}  // namespace
}  // namespace fnda
