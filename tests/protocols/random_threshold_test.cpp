#include "protocols/random_threshold.h"

#include <gtest/gtest.h>

#include <map>

#include "core/validation.h"

namespace fnda {
namespace {

TEST(RandomThresholdTest, AllTradesAtThresholdPrice) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(7));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  Rng rng(1);
  const Outcome outcome = RandomThresholdProtocol(money(5)).clear(book, rng);
  expect_valid_outcome(book, outcome);
  EXPECT_EQ(outcome.trade_count(), 2u);
  for (const Fill& fill : outcome.fills()) {
    EXPECT_EQ(fill.price, money(5));
  }
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
}

TEST(RandomThresholdTest, TradesMinOfEligibleSides) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_seller(IdentityId{10}, money(2));
  Rng rng(1);
  const Outcome outcome = RandomThresholdProtocol(money(5)).clear(book, rng);
  EXPECT_EQ(outcome.trade_count(), 1u);
}

TEST(RandomThresholdTest, IneligibleNeverTrade) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(4));   // below r: ineligible
  book.add_buyer(IdentityId{1}, money(9));
  book.add_seller(IdentityId{10}, money(6));  // above r: ineligible
  book.add_seller(IdentityId{11}, money(2));
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const Outcome outcome = RandomThresholdProtocol(money(5)).clear(book, rng);
    EXPECT_EQ(outcome.trade_count(), 1u);
    EXPECT_EQ(outcome.units_bought(IdentityId{0}), 0u);
    EXPECT_EQ(outcome.units_sold(IdentityId{10}), 0u);
  }
}

TEST(RandomThresholdTest, SelectionIsUniformAcrossEligible) {
  // 3 eligible buyers for 1 unit: each should win about 1/3 of the time.
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_seller(IdentityId{10}, money(2));

  std::map<std::uint64_t, int> wins;
  constexpr int kRounds = 3000;
  for (int round = 0; round < kRounds; ++round) {
    Rng rng(static_cast<std::uint64_t>(round));
    const Outcome outcome = RandomThresholdProtocol(money(5)).clear(book, rng);
    for (const Fill& fill : outcome.fills()) {
      if (fill.side == Side::kBuyer) ++wins[fill.identity.value()];
    }
  }
  ASSERT_EQ(wins.size(), 3u);
  for (const auto& [identity, count] : wins) {
    EXPECT_NEAR(count, kRounds / 3, 150) << "identity " << identity;
  }
}

TEST(RandomThresholdTest, LotteryStuffingRaisesWinProbability) {
  // Section 8's attack: a buyer submitting 3 names instead of 1 wins the
  // single unit far more often — the protocol is not false-name-proof.
  int single_wins = 0;
  int stuffed_wins = 0;
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    {
      OrderBook book;
      book.add_buyer(IdentityId{0}, money(9));   // the attacker
      book.add_buyer(IdentityId{1}, money(8));   // honest rival
      book.add_seller(IdentityId{10}, money(2));
      Rng rng(static_cast<std::uint64_t>(round));
      const Outcome outcome =
          RandomThresholdProtocol(money(5)).clear(book, rng);
      single_wins += outcome.units_bought(IdentityId{0}) > 0 ? 1 : 0;
    }
    {
      OrderBook book;
      book.add_buyer(IdentityId{0}, money(9));
      book.add_buyer(IdentityId{100}, money(9));  // attacker's false names
      book.add_buyer(IdentityId{101}, money(9));
      book.add_buyer(IdentityId{1}, money(8));
      book.add_seller(IdentityId{10}, money(2));
      Rng rng(static_cast<std::uint64_t>(round));
      const Outcome outcome =
          RandomThresholdProtocol(money(5)).clear(book, rng);
      const bool won = outcome.units_bought(IdentityId{0}) > 0 ||
                       outcome.units_bought(IdentityId{100}) > 0 ||
                       outcome.units_bought(IdentityId{101}) > 0;
      stuffed_wins += won ? 1 : 0;
    }
  }
  // ~50% vs ~75%.
  EXPECT_NEAR(single_wins, kRounds / 2, 150);
  EXPECT_NEAR(stuffed_wins, kRounds * 3 / 4, 150);
  EXPECT_GT(stuffed_wins, single_wins + kRounds / 10);
}

TEST(RandomThresholdTest, EmptyBook) {
  OrderBook book;
  Rng rng(1);
  EXPECT_EQ(RandomThresholdProtocol(money(5)).clear(book, rng).trade_count(),
            0u);
}

}  // namespace
}  // namespace fnda
