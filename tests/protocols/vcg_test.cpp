#include "protocols/vcg.h"

#include <gtest/gtest.h>

#include "core/surplus.h"
#include "core/validation.h"
#include "mechanism/properties.h"

namespace fnda {
namespace {

OrderBook example1() {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(5));
  return book;
}

/// Brute-force Clarke pivot: declared efficient welfare of everyone except
/// `self`, computed on a book with `self` removed, minus their welfare in
/// `self`'s presence.
double brute_force_buyer_payment(const SingleUnitInstance& instance,
                                 std::size_t buyer_index) {
  auto welfare = [](std::vector<Money> buyers, std::vector<Money> sellers) {
    std::sort(buyers.begin(), buyers.end(), std::greater<>());
    std::sort(sellers.begin(), sellers.end());
    double w = 0.0;
    for (std::size_t l = 0; l < std::min(buyers.size(), sellers.size());
         ++l) {
      if (buyers[l] < sellers[l]) break;
      w += (buyers[l] - sellers[l]).to_double();
    }
    return w;
  };
  const double with_all =
      welfare(instance.buyer_values, instance.seller_values);
  std::vector<Money> without = instance.buyer_values;
  const Money own = without[buyer_index];
  without.erase(without.begin() + static_cast<std::ptrdiff_t>(buyer_index));
  const double others_without = welfare(without, instance.seller_values);
  // Others' welfare with the buyer present: total minus the buyer's own
  // gross value if it wins (it wins iff removing it changes the pairing).
  // Payment = others_without - (with_all - own_gross_if_winning); for a
  // winning buyer own gross value = its declared value.
  return others_without - (with_all - own.to_double());
}

TEST(VcgTest, Example1PricesMatchClosedForm) {
  OrderBook book = example1();
  Rng rng(1);
  const SortedBook sorted(book, rng);
  // k = 3; buyer price = max(b(4), s(3)) = max(4, 4) = 4;
  // seller price = min(s(4), b(3)) = min(5, 7) = 5.
  EXPECT_EQ(VcgDoubleAuction::buyer_price(sorted), money(4));
  EXPECT_EQ(VcgDoubleAuction::seller_price(sorted), money(5));

  const Outcome outcome = VcgDoubleAuction::clear_sorted(sorted);
  EXPECT_EQ(outcome.trade_count(), 3u);
  // Deficit: 3 * (5 - 4) = 3 paid in by the auctioneer.
  EXPECT_EQ(outcome.auctioneer_revenue(), money(-3));
}

TEST(VcgTest, OutcomeValidUnderDeficitRelaxation) {
  OrderBook book = example1();
  Rng rng(1);
  const Outcome outcome = VcgDoubleAuction().clear(book, rng);
  // Strict validation flags the subsidy...
  EXPECT_FALSE(validate_outcome(book, outcome).empty());
  // ...while the VCG-aware relaxation passes everything else.
  EXPECT_TRUE(
      validate_outcome(book, outcome, ValidationOptions{true}).empty());
}

TEST(VcgTest, AllocationIsAlwaysEfficient) {
  InstanceSpec spec;
  spec.max_buyers = 10;
  spec.max_sellers = 10;
  const VcgDoubleAuction vcg;
  Rng rng(0x5c9);
  for (int run = 0; run < 300; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = vcg.clear(market.book, clear_rng);
    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    EXPECT_NEAR(realized_surplus(outcome, market.truth).total,
                efficient_surplus(sorted), 1e-9);
  }
}

TEST(VcgTest, PricesMatchBruteForcePivotOnRandomInstances) {
  InstanceSpec spec;
  spec.min_buyers = 2;
  spec.max_buyers = 7;
  spec.min_sellers = 2;
  spec.max_sellers = 7;
  Rng rng(0xc1a);
  for (int run = 0; run < 200; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    const std::size_t k = sorted.efficient_trade_count();
    if (k == 0) continue;
    const Money price = VcgDoubleAuction::buyer_price(sorted);
    // Compare against the brute-force pivot of each *winning* buyer.
    for (std::size_t rank = 1; rank <= k; ++rank) {
      const IdentityId identity = sorted.buyer(rank).identity;
      // Find the instance index of this winner.
      const std::size_t index = identity.value();  // buyers use index ids
      EXPECT_NEAR(price.to_double(),
                  brute_force_buyer_payment(instance, index), 1e-9)
          << "run " << run << " rank " << rank;
    }
  }
}

TEST(VcgTest, DeficitNeverNegativeOfItself) {
  // p_b <= p_s always: the auctioneer never *profits* from VCG.
  InstanceSpec spec;
  spec.max_buyers = 8;
  spec.max_sellers = 8;
  const VcgDoubleAuction vcg;
  Rng rng(0xdef1c17);
  for (int run = 0; run < 300; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = vcg.clear(market.book, clear_rng);
    EXPECT_LE(outcome.auctioneer_revenue(), Money{});
  }
}

TEST(VcgTest, TruthfulDominantWithoutFalseNames) {
  // VCG is DSIC for unilateral own-side misreports.
  const VcgDoubleAuction vcg;
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(5)};
  for (std::size_t index = 0; index < 4; ++index) {
    for (Side role : {Side::kBuyer, Side::kSeller}) {
      const DeviationEvaluator evaluator(vcg, instance, {role, index});
      const double truthful = evaluator.truthful_utility();
      for (Money v : candidate_values(instance, evaluator.true_value(), {})) {
        EXPECT_LE(evaluator.evaluate(Strategy::misreport(role, v)),
                  truthful + 1e-9)
            << to_string(role) << ' ' << index << " via " << v;
      }
    }
  }
}

TEST(VcgTest, VulnerableToFalseNames) {
  // Sakurai-Yokoo-Matsubara (AAAI-99): the generalized Vickrey auction is
  // not false-name-proof in general; the double-auction VCG isn't either.
  // The exhaustive search should find profitable false-name deviations on
  // random instances.
  const VcgDoubleAuction vcg;
  IcCheckConfig config;
  config.instances = 30;
  config.manipulators_per_instance = 2;
  config.instance_spec.max_buyers = 5;
  config.instance_spec.max_sellers = 5;
  config.search.max_declarations = 2;
  config.seed = 0xfa15e;
  const IcCheckReport report = check_incentive_compatibility(vcg, config);
  EXPECT_FALSE(report.clean())
      << "expected VCG false-name vulnerabilities on random instances";
}

TEST(VcgTest, EmptyAndNoOverlapBooks) {
  const VcgDoubleAuction vcg;
  OrderBook empty;
  Rng rng(1);
  EXPECT_EQ(vcg.clear(empty, rng).trade_count(), 0u);
  OrderBook no_overlap;
  no_overlap.add_buyer(IdentityId{0}, money(1));
  no_overlap.add_seller(IdentityId{1}, money(5));
  EXPECT_EQ(vcg.clear(no_overlap, rng).trade_count(), 0u);
}

}  // namespace
}  // namespace fnda
