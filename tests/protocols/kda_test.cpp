#include "protocols/kda.h"

#include <gtest/gtest.h>

#include "core/surplus.h"
#include "core/validation.h"
#include "mechanism/manipulation.h"
#include "mechanism/properties.h"

namespace fnda {
namespace {

OrderBook example1() {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(5));
  return book;
}

TEST(KdaTest, PriceInterpolatesMarginalPair) {
  OrderBook book = example1();
  // k = 3: b(3) = 7, s(3) = 4.
  const std::pair<double, double> cases[] = {
      {0.0, 4.0}, {0.5, 5.5}, {1.0, 7.0}, {0.25, 4.75}};
  for (const auto& [theta, expected] : cases) {
    Rng rng(1);
    const Outcome outcome = KDoubleAuction(theta).clear(book, rng);
    ASSERT_EQ(outcome.trade_count(), 3u) << theta;
    for (const Fill& fill : outcome.fills()) {
      EXPECT_EQ(fill.price, money(expected)) << theta;
    }
    EXPECT_EQ(outcome.auctioneer_revenue(), Money{}) << theta;
  }
}

TEST(KdaTest, ThetaClamped) {
  EXPECT_DOUBLE_EQ(KDoubleAuction(-0.5).theta(), 0.0);
  EXPECT_DOUBLE_EQ(KDoubleAuction(1.5).theta(), 1.0);
  EXPECT_DOUBLE_EQ(KDoubleAuction(0.3).theta(), 0.3);
}

TEST(KdaTest, AlwaysEfficientBudgetBalancedIr) {
  InstanceSpec spec;
  spec.max_buyers = 10;
  spec.max_sellers = 10;
  const KDoubleAuction kda(0.5);
  Rng rng(0x6da1);
  for (int run = 0; run < 300; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = kda.clear(market.book, clear_rng);
    EXPECT_TRUE(validate_outcome(market.book, outcome).empty());
    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    EXPECT_NEAR(realized_surplus(outcome, market.truth).total,
                efficient_surplus(sorted), 1e-9);
  }
}

TEST(KdaTest, MarginalBuyerProfitsFromShading) {
  // The textbook non-IC case: the marginal buyer sets the price with its
  // own bid (theta > 0), so shading down to just above s(k) pays.
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(7)};
  instance.seller_values = {money(2), money(3)};
  // k = 2, b(2) = 7 is marginal; price = 0.5*7 + 0.5*3 = 5.
  const KDoubleAuction kda(0.5);
  const DeviationEvaluator evaluator(kda, instance, {Side::kBuyer, 1});
  EXPECT_NEAR(evaluator.truthful_utility(), 7.0 - 5.0, 1e-9);
  // Shading to 3 drops the price to 0.5*3 + 0.5*3 = 3: utility 4.
  const double shaded =
      evaluator.evaluate(Strategy::misreport(Side::kBuyer, money(3)));
  EXPECT_NEAR(shaded, 7.0 - 3.0, 1e-9);
  EXPECT_GT(shaded, evaluator.truthful_utility());
}

TEST(KdaTest, NotIncentiveCompatibleEvenWithoutFalseNames) {
  const KDoubleAuction kda(0.5);
  IcCheckConfig config;
  config.instances = 30;
  config.manipulators_per_instance = 2;
  config.instance_spec.max_buyers = 5;
  config.instance_spec.max_sellers = 5;
  config.search.max_declarations = 1;  // misreports only
  config.seed = 0x6da;
  const IcCheckReport report = check_incentive_compatibility(kda, config);
  EXPECT_FALSE(report.clean())
      << "kDA should be manipulable by simple misreports";
  // Every violation is a single own-side declaration (no false name
  // needed) or an abstention.
  for (const IcViolation& violation : report.violations) {
    EXPECT_LE(violation.strategy.declarations.size(), 1u);
  }
}

TEST(KdaTest, ExtremeThetasAreOneSidedIc) {
  // theta = 0: price = s(k); buyers can't influence it downward, so
  // *buyers* are truthful (this is the buyer's-bid double auction dual).
  const KDoubleAuction seller_priced(0.0);
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(7)};
  instance.seller_values = {money(2), money(3)};
  for (std::size_t index : {std::size_t{0}, std::size_t{1}}) {
    const DeviationEvaluator evaluator(seller_priced, instance,
                                       {Side::kBuyer, index});
    const double truthful = evaluator.truthful_utility();
    for (Money v : candidate_values(instance, evaluator.true_value(), {})) {
      EXPECT_LE(evaluator.evaluate(Strategy::misreport(Side::kBuyer, v)),
                truthful + 1e-9);
    }
  }
}

TEST(KdaTest, EmptyBook) {
  OrderBook book;
  Rng rng(1);
  EXPECT_EQ(KDoubleAuction(0.5).clear(book, rng).trade_count(), 0u);
}

}  // namespace
}  // namespace fnda
