#include "protocols/tpd_rebate.h"

#include "protocols/tpd.h"

#include <gtest/gtest.h>

#include "core/surplus.h"
#include "core/validation.h"
#include "mechanism/manipulation.h"
#include "mechanism/properties.h"

namespace fnda {
namespace {

// A book where TPD (r = 4.5) runs case 2 and collects revenue: buyers
// 9, 8, 7, 4.8; sellers 2, 3, 4 -> i = 4 > j = 3; buyers pay b(4) = 4.8,
// sellers get 4.5, revenue = 3 * 0.3 = 0.9.
SingleUnitInstance revenue_instance() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4.8)};
  instance.seller_values = {money(2), money(3), money(4)};
  return instance;
}

TEST(TpdRebateTest, RebatesComeOutOfTheRevenue) {
  const InstantiatedMarket market = instantiate_truthful(revenue_instance());
  Rng rng(1);
  const Outcome outcome = TpdWithRebates(money(4.5)).clear(market.book, rng);
  // Trades identical to plain TPD.
  EXPECT_EQ(outcome.trade_count(), 3u);
  EXPECT_GT(outcome.rebates_total(), Money{});
  // Every rebate is non-negative and the outcome stays structurally valid
  // under the deficit relaxation (rebates may exceed revenue on some
  // books; not on this one).
  EXPECT_TRUE(
      validate_outcome(market.book, outcome, ValidationOptions{true}).empty());
  // Traders keep more than under plain TPD.
  const SurplusReport report = realized_surplus(outcome, market.truth);
  EXPECT_GT(report.except_auctioneer, 0.0);
  EXPECT_LT(report.auctioneer, 0.9 + 1e-9);
}

TEST(TpdRebateTest, RebateIndependentOfOwnDeclaration) {
  // The rebate of identity i is computed from the book WITHOUT i, so
  // changing i's declared value must not change i's rebate (as long as
  // its identity stays in the book).
  SingleUnitInstance instance = revenue_instance();
  const TpdWithRebates protocol(money(4.5));

  auto rebate_of_buyer0 = [&](Money declared) {
    OrderBook book;
    book.add_buyer(IdentityId{0}, declared);
    for (std::size_t i = 1; i < instance.buyer_values.size(); ++i) {
      book.add_buyer(IdentityId{i}, instance.buyer_values[i]);
    }
    for (std::size_t j = 0; j < instance.seller_values.size(); ++j) {
      book.add_seller(IdentityId{100 + j}, instance.seller_values[j]);
    }
    Rng rng(1);
    return protocol.clear(book, rng).rebate_of(IdentityId{0});
  };

  const Money base = rebate_of_buyer0(money(9));
  EXPECT_EQ(rebate_of_buyer0(money(6)), base);
  EXPECT_EQ(rebate_of_buyer0(money(0.5)), base);
}

TEST(TpdRebateTest, MisreportIcPreserved) {
  // For a FIXED set of identities, rebates don't depend on own reports,
  // so single own-side misreports still never beat truth.
  const TpdWithRebates protocol(money(50));
  IcCheckConfig config;
  config.instances = 20;
  config.manipulators_per_instance = 2;
  config.instance_spec.max_buyers = 5;
  config.instance_spec.max_sellers = 5;
  config.search.max_declarations = 1;
  config.search.allow_absence = false;  // absence drops a rebate by design
  config.seed = 0x2eb1;
  const IcCheckReport report = check_incentive_compatibility(protocol, config);
  for (const IcViolation& violation : report.violations) {
    // Only wrong-side single bids may appear (they add an identity's
    // rebate); own-side misreports must be clean.
    EXPECT_NE(violation.strategy.declarations[0].side,
              violation.manipulator.role)
        << violation.strategy.to_string();
  }
}

TEST(TpdRebateTest, FalseNamesMilkTheRebatePool) {
  // The negative result: free identities each collect a rebate share, so
  // minting pseudonyms IS profitable — naive redistribution destroys the
  // paper's robustness property.
  const TpdWithRebates protocol(money(4.5));
  const DeviationEvaluator evaluator(protocol, revenue_instance(),
                                     {Side::kBuyer, 0});
  SearchConfig search;
  search.max_declarations = 2;
  const SearchResult result = find_best_deviation(evaluator, search);
  EXPECT_TRUE(result.profitable(1e-9))
      << "expected a profitable false-name deviation under rebates";
  // And plain TPD on the same instance is robust (control).
  const TpdProtocol plain(money(4.5));
  const DeviationEvaluator control(plain, revenue_instance(),
                                   {Side::kBuyer, 0});
  EXPECT_FALSE(find_best_deviation(control, search).profitable(1e-9));
}

TEST(TpdRebateTest, BalancedMarketStillPaysCounterfactualRebates) {
  // Buyers 9, 8; sellers 2, 3; r = 5: i == j, the market itself collects
  // NOTHING.  But each rebate is computed on the book WITHOUT that
  // participant, which unbalances it: removing a buyer forces case 3
  // (revenue 2), removing a seller forces case 2 (revenue 3).  Rebates
  // total 2 * 2/4 + 2 * 3/4 = 2.5 against zero collected — the classic
  // redistribution deficit, and the second reason (beyond false names)
  // this repair fails.
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8)};
  instance.seller_values = {money(2), money(3)};
  const InstantiatedMarket market = instantiate_truthful(instance);
  Rng rng(1);
  const Outcome outcome = TpdWithRebates(money(5)).clear(market.book, rng);
  EXPECT_EQ(outcome.rebates_total(), money(2.5));
  EXPECT_EQ(outcome.auctioneer_revenue(), money(-2.5));
  // The strict validator flags the subsidy; the relaxation accepts it.
  EXPECT_FALSE(validate_outcome(market.book, outcome).empty());
  EXPECT_TRUE(
      validate_outcome(market.book, outcome, ValidationOptions{true}).empty());
}

TEST(TpdRebateTest, EmptyBook) {
  OrderBook book;
  Rng rng(1);
  const Outcome outcome = TpdWithRebates(money(5)).clear(book, rng);
  EXPECT_EQ(outcome.trade_count(), 0u);
  EXPECT_EQ(outcome.rebates_total(), Money{});
}

}  // namespace
}  // namespace fnda
