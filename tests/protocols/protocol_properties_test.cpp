// Property tests shared by every protocol: outcome invariants on random
// books, plus cross-protocol dominance facts (efficient clearing realises
// at least as much surplus as PMD/TPD on every instance).
#include <gtest/gtest.h>

#include <memory>

#include "core/surplus.h"
#include "core/validation.h"
#include "mechanism/properties.h"
#include "protocols/efficient.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

ProtocolPtr make_protocol(const std::string& name) {
  if (name == "pmd") return std::make_unique<PmdProtocol>();
  if (name == "tpd") return std::make_unique<TpdProtocol>(money(50));
  if (name == "efficient") return std::make_unique<EfficientClearing>();
  if (name == "random-threshold") {
    return std::make_unique<RandomThresholdProtocol>(money(50));
  }
  throw std::invalid_argument("unknown protocol " + name);
}

class ProtocolInvariantsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProtocolInvariantsTest, RandomBooksSatisfyAllInvariants) {
  const ProtocolPtr protocol = make_protocol(GetParam());
  InstanceSpec spec;
  spec.max_buyers = 12;
  spec.max_sellers = 12;
  const auto violation =
      check_outcome_invariants(*protocol, spec, /*instances=*/400,
                               /*seed=*/0xbeef);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(ProtocolInvariantsTest, DegenerateBooksSatisfyInvariants) {
  const ProtocolPtr protocol = make_protocol(GetParam());
  // Extremes: empty sides, all-identical values, single participants.
  InstanceSpec spec;
  spec.min_buyers = 0;
  spec.max_buyers = 2;
  spec.min_sellers = 0;
  spec.max_sellers = 2;
  spec.low = Money::from_units(50);
  spec.high = Money::from_units(50);  // every value identical: max ties
  const auto violation =
      check_outcome_invariants(*protocol, spec, /*instances=*/200,
                               /*seed=*/0xcafe);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(ProtocolInvariantsTest, SurplusNeverExceedsEfficient) {
  const ProtocolPtr protocol = make_protocol(GetParam());
  InstanceSpec spec;
  spec.max_buyers = 10;
  spec.max_sellers = 10;
  Rng rng(0xdead);
  for (int run = 0; run < 300; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = protocol->clear(market.book, clear_rng);
    const SurplusReport report = realized_surplus(outcome, market.truth);

    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    const double bound = efficient_surplus(sorted);
    EXPECT_LE(report.total, bound + 1e-9)
        << GetParam() << " exceeded the Pareto bound on run " << run;
    EXPECT_LE(report.except_auctioneer, report.total + 1e-9);
    EXPECT_GE(report.auctioneer, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolInvariantsTest,
                         ::testing::Values("pmd", "tpd", "efficient",
                                           "random-threshold"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CrossProtocolTest, EfficientWeaklyDominatesEveryProtocolOnSurplus) {
  InstanceSpec spec;
  spec.max_buyers = 8;
  spec.max_sellers = 8;
  const PmdProtocol pmd;
  const TpdProtocol tpd(money(50));
  const EfficientClearing efficient;
  Rng rng(0xfeed);
  for (int run = 0; run < 200; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    const std::uint64_t seed = rng();
    auto total = [&](const DoubleAuctionProtocol& protocol) {
      Rng clear_rng(seed);
      const Outcome outcome = protocol.clear(market.book, clear_rng);
      return realized_surplus(outcome, market.truth).total;
    };
    const double best = total(efficient);
    EXPECT_GE(best + 1e-9, total(pmd));
    EXPECT_GE(best + 1e-9, total(tpd));
  }
}

TEST(CrossProtocolTest, PmdLosesAtMostTheMarginalTrade) {
  // PMD executes k or k-1 of the k efficient trades; its surplus shortfall
  // is at most the value of the k-th efficient pair.
  InstanceSpec spec;
  spec.max_buyers = 10;
  spec.max_sellers = 10;
  const PmdProtocol pmd;
  Rng rng(0xabc);
  for (int run = 0; run < 300; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = pmd.clear(market.book, clear_rng);
    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    const std::size_t k = sorted.efficient_trade_count();
    ASSERT_GE(outcome.trade_count() + 1, k);
    ASSERT_LE(outcome.trade_count(), k);
  }
}

TEST(CrossProtocolTest, TpdTradeCountIsMinOfEligibleSides) {
  InstanceSpec spec;
  spec.max_buyers = 10;
  spec.max_sellers = 10;
  const Money r = money(50);
  const TpdProtocol tpd(r);
  Rng rng(0x123);
  for (int run = 0; run < 300; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = tpd.clear(market.book, clear_rng);
    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    const std::size_t expected = std::min(sorted.buyers_at_or_above(r),
                                          sorted.sellers_at_or_below(r));
    EXPECT_EQ(outcome.trade_count(), expected);
  }
}

}  // namespace
}  // namespace fnda
