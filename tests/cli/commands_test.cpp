#include "cli/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fnda {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args,
           const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, in, out, err);
  return CliRun{code, out.str(), err.str()};
}

const char* kExample1Book =
    "side,identity,value\n"
    "buyer,1,9\nbuyer,2,8\nbuyer,3,7\nbuyer,4,4\n"
    "seller,11,2\nseller,12,3\nseller,13,4\nseller,14,5\n";

TEST(CliTest, HelpByDefaultAndExplicit) {
  EXPECT_EQ(run({}).exit_code, 0);
  const CliRun help = run({"help"});
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.out.find("clear"), std::string::npos);
  EXPECT_NE(help.out.find("optimize"), std::string::npos);
}

TEST(CliTest, UnknownCommandIsUsageError) {
  const CliRun result = run({"frobnicate"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, ClearFromStdinTpd) {
  const CliRun result =
      run({"clear", "--protocol", "tpd", "--threshold", "4.5"},
          kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("3 trades"), std::string::npos);
  EXPECT_NE(result.out.find("pays 4.5"), std::string::npos);
}

TEST(CliTest, ClearJsonFormat) {
  const CliRun result = run(
      {"clear", "--protocol", "pmd", "--format", "json"}, kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("\"trades\":3"), std::string::npos);
  EXPECT_NE(result.out.find("\"price\":4.5"), std::string::npos);
}

TEST(CliTest, ClearCsvFormat) {
  const CliRun result = run(
      {"clear", "--protocol", "efficient", "--format", "csv"},
      kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_EQ(result.out.rfind("side,identity,price\n", 0), 0u);
}

TEST(CliTest, ClearVcgToleratesDeficit) {
  const CliRun result = run({"clear", "--protocol", "vcg"}, kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("auctioneer revenue -3"), std::string::npos);
}

TEST(CliTest, ClearRejectsUnknownProtocolAndFormat) {
  EXPECT_EQ(run({"clear", "--protocol", "nope"}, kExample1Book).exit_code, 2);
  EXPECT_EQ(run({"clear", "--format", "xml"}, kExample1Book).exit_code, 2);
}

TEST(CliTest, ClearRejectsUnknownFlag) {
  const CliRun result = run({"clear", "--bogus", "1"}, kExample1Book);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("--bogus"), std::string::npos);
}

TEST(CliTest, ClearMalformedBookIsError) {
  const CliRun result = run({"clear"}, "buyer,not-a-number\n");
  EXPECT_EQ(result.exit_code, 2);  // invalid_argument -> usage error path
}

TEST(CliTest, ClearMissingFileIsRuntimeError) {
  const CliRun result = run({"clear", "--book", "/no/such/file.csv"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, SimulateReportsEfficiency) {
  const CliRun result = run({"simulate", "--buyers", "10", "--sellers", "10",
                             "--instances", "50"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("efficiency:"), std::string::npos);
  EXPECT_NE(result.out.find("social surplus"), std::string::npos);
}

TEST(CliTest, SweepEmitsCsvSeries) {
  const CliRun result = run({"sweep", "--participants", "10", "--step", "50",
                             "--instances", "20"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  // Header + thresholds 0, 50, 100.
  EXPECT_EQ(result.out.rfind("threshold,surplus", 0), 0u);
  EXPECT_EQ(std::count(result.out.begin(), result.out.end(), '\n'), 4);
}

TEST(CliTest, SweepRejectsNonPositiveStep) {
  EXPECT_EQ(run({"sweep", "--step", "0"}).exit_code, 2);
}

TEST(CliTest, OptimizeFindsCentralThreshold) {
  const CliRun result = run({"optimize", "--buyers", "15", "--sellers", "15",
                             "--instances", "80"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("best threshold"), std::string::npos);
}

TEST(CliTest, ClearMultiReproducesExample5) {
  const char* book =
      "buyer,0,9;8\nbuyer,1,7\nbuyer,2,6\nbuyer,3,4\n"
      "seller,10,2\nseller,11,3\nseller,12,4\nseller,13,5\nseller,14,7\n";
  const CliRun result = run({"clear-multi", "--threshold", "4.5"}, book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("3 units traded"), std::string::npos);
  EXPECT_NE(result.out.find("buyer 0 takes 2 unit(s) for 10.5"),
            std::string::npos);
}

TEST(CliTest, ClearMultiCsvFormat) {
  const CliRun result = run(
      {"clear-multi", "--threshold", "5", "--format", "csv"},
      "buyer,0,9\nseller,10,2\n");
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_EQ(result.out.rfind("side,identity,units,total,per_unit\n", 0), 0u);
  EXPECT_NE(result.out.find("buyer,0,1,5,5"), std::string::npos);
}

TEST(CliTest, ClearMultiRejectsIncreasingSchedule) {
  const CliRun result = run({"clear-multi"}, "buyer,0,3;9\n");
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CliTest, SimulateBinomialWorkload) {
  const CliRun result =
      run({"simulate", "--binomial", "20", "--instances", "40"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("B(20,0.5)"), std::string::npos);
}

TEST(CliTest, AttackFindsPmdExample1Manipulation) {
  const CliRun result = run({"attack", "--protocol", "pmd", "--manipulator",
                             "seller:2"},
                            kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("VERDICT: manipulable"), std::string::npos);
  EXPECT_NE(result.out.find("truthful utility: 0.5"), std::string::npos);
}

TEST(CliTest, AttackConfirmsTpdRobustness) {
  const CliRun result = run({"attack", "--protocol", "tpd", "--threshold",
                             "4.5", "--manipulator", "seller:2"},
                            kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("VERDICT: truthful play is optimal"),
            std::string::npos);
}

TEST(CliTest, AttackValidatesManipulatorFlag) {
  EXPECT_EQ(run({"attack"}, kExample1Book).exit_code, 2);
  EXPECT_EQ(run({"attack", "--manipulator", "broker:1"}, kExample1Book)
                .exit_code,
            2);
  // Out-of-range index: a runtime error, not a crash.
  EXPECT_EQ(run({"attack", "--manipulator", "seller:99"}, kExample1Book)
                .exit_code,
            1);
}

TEST(CliTest, SimulateParallelThreads) {
  const CliRun result = run({"simulate", "--buyers", "20", "--sellers", "20",
                             "--instances", "200", "--threads", "4"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("efficiency:"), std::string::npos);
  // Thread-count invariance: same numbers with 1 vs 4 threads.
  const CliRun single = run({"simulate", "--buyers", "20", "--sellers", "20",
                             "--instances", "200", "--threads", "2"});
  EXPECT_EQ(single.out, result.out);
}

TEST(CliTest, DynamicsTpdStaysTruthful) {
  const CliRun result = run(
      {"dynamics", "--protocol", "tpd", "--threshold", "4.5", "--sweeps",
       "3"},
      kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("converged: yes after 1 sweep"),
            std::string::npos);
  EXPECT_NE(result.out.find("deviating from truth: 0/8"), std::string::npos);
}

TEST(CliTest, DynamicsPmdDrifts) {
  const CliRun result = run(
      {"dynamics", "--protocol", "pmd", "--sweeps", "2"}, kExample1Book);
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_EQ(result.out.find("deviating from truth: 0/8"), std::string::npos);
}

TEST(CliTest, DeterministicGivenSeed) {
  const CliRun a = run({"clear", "--seed", "9"}, kExample1Book);
  const CliRun b = run({"clear", "--seed", "9"}, kExample1Book);
  EXPECT_EQ(a.out, b.out);
}

TEST(CliTest, MarketBenchReportsThroughput) {
  const CliRun result =
      run({"market-bench", "--clients", "100", "--rounds", "1", "--shards",
           "2", "--drop", "0.05", "--duplicate", "0.05", "--seed", "3"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("clients: 100"), std::string::npos);
  EXPECT_NE(result.out.find("shards: 2"), std::string::npos);
  EXPECT_NE(result.out.find("msg/s"), std::string::npos);
  EXPECT_NE(result.out.find("rounds/s"), std::string::npos);
  EXPECT_NE(result.out.find("chunk splits"), std::string::npos);
  EXPECT_NE(result.out.find("sorts at close"), std::string::npos);
}

TEST(CliTest, MarketBenchRejectsZeroClients) {
  const CliRun result = run({"market-bench", "--clients", "0"});
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CliTest, MarketBenchRejectsMoreThreadsThanShards) {
  const CliRun result = run({"market-bench", "--clients", "100", "--rounds",
                             "1", "--shards", "4", "--threads", "5"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("--threads"), std::string::npos);
}

TEST(CliTest, MarketBenchMultiThreadedMatchesSingleThreaded) {
  const std::vector<std::string> base = {"market-bench", "--clients", "100",
                                         "--rounds",     "1",         "--shards",
                                         "2",            "--seed",    "3"};
  std::vector<std::string> one = base;
  one.push_back("--threads");
  one.push_back("1");
  std::vector<std::string> two = base;
  two.push_back("--threads");
  two.push_back("2");
  const CliRun run_one = run(one);
  const CliRun run_two = run(two);
  EXPECT_EQ(run_one.exit_code, 0) << run_one.err;
  EXPECT_EQ(run_two.exit_code, 0) << run_two.err;
  EXPECT_NE(run_two.out.find("threads: 2"), std::string::npos);
  // Everything except the threads line and wall-clock rates is identical.
  const auto digest = [](const std::string& out) {
    std::string kept;
    std::istringstream lines(out);
    for (std::string line; std::getline(lines, line);) {
      if (line.find("threads:") != std::string::npos) continue;
      if (line.find("/s") != std::string::npos) continue;
      if (line.find("wall") != std::string::npos) continue;
      kept += line;
      kept += '\n';
    }
    return kept;
  };
  EXPECT_EQ(digest(run_one.out), digest(run_two.out));
}

TEST(CliTest, MetricsDumpTableFormat) {
  const CliRun result = run({"metrics-dump", "--clients", "16", "--rounds",
                             "1", "--format", "table"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("name"), std::string::npos);
  EXPECT_NE(result.out.find("counter"), std::string::npos);
  EXPECT_NE(result.out.find("fnda_server_rounds_closed_total"),
            std::string::npos);
}

TEST(CliTest, MetricsDumpQuietValidatesSilently) {
  const CliRun result = run({"metrics-dump", "--clients", "16", "--rounds",
                             "1", "--quiet"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_TRUE(result.out.empty());
}

TEST(CliTest, MetricsDumpMissingInputFileExitsOne) {
  const CliRun result = run({"metrics-dump", "--in", "/nonexistent.prom"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, MetricsDumpMalformedInputExitsOne) {
  const std::string path = testing::TempDir() + "fnda_bad_metrics.prom";
  {
    std::ofstream file(path);
    file << "garbage{\n";
  }
  const CliRun result = run({"metrics-dump", "--in", path});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("prometheus parse error at line 1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MetricsDumpParsesItsOwnOutput) {
  const CliRun dump = run({"metrics-dump", "--clients", "16", "--rounds",
                           "1"});
  ASSERT_EQ(dump.exit_code, 0) << dump.err;
  const std::string path = testing::TempDir() + "fnda_roundtrip.prom";
  {
    std::ofstream file(path);
    file << dump.out;
  }
  const CliRun quiet = run({"metrics-dump", "--in", path, "--quiet"});
  EXPECT_EQ(quiet.exit_code, 0) << quiet.err;
  EXPECT_TRUE(quiet.out.empty());
  std::remove(path.c_str());
}

TEST(CliTest, ConsoleInteractiveSessionOverStdin) {
  const CliRun result =
      run({"console", "--shards", "2", "--seed", "7"},
          "status\nrun 1\nhealth\nquit\n");
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("fnda console"), std::string::npos);
  EXPECT_NE(result.out.find("shards: 2"), std::string::npos);
  EXPECT_NE(result.out.find("rounds: 1"), std::string::npos);
  EXPECT_NE(result.out.find("delivery_p99"), std::string::npos);
}

TEST(CliTest, ConsoleJsonReplies) {
  const CliRun result =
      run({"console", "--shards", "2", "--json"}, "status\nquit\n");
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("{\"ok\":true,\"shards\":2"), std::string::npos);
}

TEST(CliTest, ConsoleScriptModeFailsFastOnBadCommand) {
  const std::string path = testing::TempDir() + "fnda_console_script.txt";
  {
    std::ofstream file(path);
    file << "status\nconfig set retained_rounds -5\nstatus\n";
  }
  const CliRun result = run({"console", "--script", path, "--shards", "2"});
  EXPECT_EQ(result.exit_code, 1);
  // The failing command is echoed with its diagnostic; nothing after runs.
  EXPECT_NE(result.out.find("out of range"), std::string::npos);
  EXPECT_EQ(result.out.find("config_generation"),
            result.out.rfind("config_generation"));  // status ran once
  std::remove(path.c_str());
}

TEST(CliTest, ConsoleMissingScriptExitsOne) {
  const CliRun result =
      run({"console", "--script", "/nonexistent-script.txt"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("cannot open script"), std::string::npos);
}

TEST(CliTest, ConsoleSloFileOverridesDefaults) {
  const std::string path = testing::TempDir() + "fnda_console_slo.txt";
  {
    std::ofstream file(path);
    file << "# comment lines are skipped\n"
            "tight max(fnda_epoch_total) <= 0\n";
  }
  const CliRun result =
      run({"console", "--shards", "2", "--slo-file", path},
          "run 2\nhealth\nquit\n");
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("tight max(fnda_epoch_total) <= 0"),
            std::string::npos);
  EXPECT_NE(result.out.find("breaches_total: 2"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fnda
