#include "cli/args.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

TEST(ArgParserTest, CommandAndFlags) {
  const ArgParser args({"clear", "--protocol", "tpd", "--threshold", "4.5"});
  EXPECT_EQ(args.command(), "clear");
  EXPECT_EQ(args.get_or("protocol", "x"), "tpd");
  EXPECT_DOUBLE_EQ(args.get_double_or("threshold", 0.0), 4.5);
  EXPECT_TRUE(args.unused().empty());
}

TEST(ArgParserTest, NoCommand) {
  const ArgParser args({});
  EXPECT_TRUE(args.command().empty());
}

TEST(ArgParserTest, BareFlag) {
  const ArgParser args({"cmd", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_or("verbose", "fallback"), "");
}

TEST(ArgParserTest, DefaultsWhenMissing) {
  const ArgParser args({"cmd"});
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get_or("x", "d"), "d");
  EXPECT_DOUBLE_EQ(args.get_double_or("x", 1.5), 1.5);
  EXPECT_EQ(args.get_int_or("x", 42), 42);
  EXPECT_FALSE(args.get("x").has_value());
}

TEST(ArgParserTest, RejectsMalformedInput) {
  EXPECT_THROW(ArgParser({"cmd", "stray-value"}), std::invalid_argument);
  EXPECT_THROW(ArgParser({"cmd", "--a", "1", "--a", "2"}),
               std::invalid_argument);
  EXPECT_THROW(ArgParser({"cmd", "--"}), std::invalid_argument);
}

TEST(ArgParserTest, RejectsNonNumericValues) {
  const ArgParser args({"cmd", "--n", "abc", "--d", "1.2.3"});
  EXPECT_THROW(args.get_int_or("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double_or("d", 0.0), std::invalid_argument);
}

TEST(ArgParserTest, UnusedTracksUnconsumedFlags) {
  const ArgParser args({"cmd", "--used", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int_or("used", 0), 1);
  const auto leftover = args.unused();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "--typo");
}

TEST(ArgParserTest, NegativeNumbersAreValues) {
  // "-5" does not start with "--", so it parses as a value.
  const ArgParser args({"cmd", "--n", "-5"});
  EXPECT_EQ(args.get_int_or("n", 0), -5);
}

}  // namespace
}  // namespace fnda
