// Prometheus exposition edge cases: label escaping, empty registries,
// throwing gauge_fn callbacks, and histogram percentile exactness when
// samples sit on bucket upper bounds (the nearest-rank contract
// snapshot_quantile documents).
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace fnda::obs {
namespace {

TEST(PrometheusEscapeLabel, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape_label("two\nlines"), "two\\nlines");
  // Composition: every special byte escapes independently.
  EXPECT_EQ(prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(prometheus_escape_label(""), "");
}

TEST(WritePrometheus, EmptyRegistryEmitsEmptyDocument) {
  MetricsRegistry registry;
  EXPECT_EQ(prometheus_text(registry.snapshot()), "");
  std::ostringstream json;
  write_json_snapshot(json, registry.snapshot());
  EXPECT_EQ(json.str(), "{\"metrics\":{}}\n");
}

TEST(WritePrometheus, EmptyHistogramStillEmitsSumCountAndInf) {
  MetricsRegistry registry;
  registry.histogram("h");
  const std::string text = prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE h histogram"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"+Inf\"} 0"), std::string::npos);
  EXPECT_NE(text.find("h_sum 0"), std::string::npos);
  EXPECT_NE(text.find("h_count 0"), std::string::npos);
}

TEST(MetricsRegistry, ThrowingGaugeFnPropagatesFromSnapshot) {
  MetricsRegistry registry;
  registry.counter("before").add(1);
  registry.gauge_fn("exploding",
                    []() -> std::int64_t { throw std::runtime_error("boom"); });
  // The callback runs at snapshot time, so the failure surfaces there —
  // documented behavior: exposition is only as reliable as its callbacks.
  EXPECT_THROW(registry.snapshot(), std::runtime_error);
}

TEST(MetricsRegistry, ThrowingCounterFnPropagatesFromSnapshot) {
  MetricsRegistry registry;
  registry.counter_fn("exploding", []() -> std::uint64_t {
    throw std::logic_error("boom");
  });
  EXPECT_THROW(registry.snapshot(), std::logic_error);
}

TEST(SnapshotQuantile, ExactAtBucketUpperBounds) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("h");
  // Values 0..7 are exact unit buckets; each is its own upper bound.
  for (std::int64_t v = 0; v < 8; ++v) hist.record(v);
  const MetricsSnapshot snap = registry.snapshot();
  const MetricValue* value = snap.find("h");
  ASSERT_NE(value, nullptr);
  // Nearest rank over 8 samples: rank ceil(q*8) picks sample index
  // rank-1, and every sample sits on its bucket's upper bound, so the
  // readout is exact.
  EXPECT_EQ(snapshot_quantile(*value, 0.125), 0u);  // rank 1 -> value 0
  EXPECT_EQ(snapshot_quantile(*value, 0.5), 3u);    // rank 4 -> value 3
  EXPECT_EQ(snapshot_quantile(*value, 0.625), 4u);  // rank 5 -> value 4
  EXPECT_EQ(snapshot_quantile(*value, 0.99), 7u);   // rank 8 -> value 7
}

TEST(SnapshotQuantile, OctaveBucketBoundsReadBackExactly) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("h");
  // 17 is a native upper bound in the msb-4 octave (buckets span two
  // values there: 16-17, 18-19, ...).  A sample recorded exactly at the
  // bound reads back exactly; one recorded at 16 rounds up to 17.
  hist.record(17);
  const MetricsSnapshot at_bound = registry.snapshot();
  EXPECT_EQ(snapshot_quantile(*at_bound.find("h"), 0.5), 17u);

  MetricsRegistry registry2;
  registry2.histogram("h").record(16);
  const MetricsSnapshot below = registry2.snapshot();
  EXPECT_EQ(snapshot_quantile(*below.find("h"), 0.5), 17u);
}

TEST(SnapshotQuantile, DegenerateInputs) {
  MetricsRegistry registry;
  registry.histogram("empty");
  registry.counter("scalar").add(9);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snapshot_quantile(*snap.find("empty"), 0.5), 0u);
  EXPECT_EQ(snapshot_quantile(*snap.find("scalar"), 0.5), 0u);

  MetricsRegistry registry2;
  Histogram& hist = registry2.histogram("h");
  hist.record(100);
  const MetricsSnapshot one = registry2.snapshot();
  // q >= 1 returns the true recorded max, not a bucket bound.
  EXPECT_EQ(snapshot_quantile(*one.find("h"), 1.0), 100u);
  EXPECT_EQ(snapshot_quantile(*one.find("h"), 2.0), 100u);
  // q <= 0 clamps to rank 1.
  EXPECT_EQ(snapshot_quantile(*one.find("h"), 0.0),
            Histogram::bucket_upper_bound(Histogram::bucket_index(100)));
}

}  // namespace
}  // namespace fnda::obs
