// Pins the HDR histogram's bucket geometry: exact unit buckets below 8,
// eight linear sub-buckets per octave above, the full u64 range mapping
// inside the flat array, and <= 12.5% relative quantization error.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace fnda::obs {
namespace {

#ifndef FNDA_NO_TELEMETRY

TEST(HistogramBuckets, ZeroAndUnitValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_upper_bound(v), v);
  }
}

TEST(HistogramBuckets, PowerOfTwoEdgesStartNewOctaves) {
  // Each power of two >= 8 opens a fresh group of 8 sub-buckets, adjacent
  // to the previous octave's top bucket.
  for (int k = 3; k < 64; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    const std::size_t at_p = Histogram::bucket_index(p);
    EXPECT_EQ(Histogram::bucket_index(p - 1) + 1, at_p) << "p=2^" << k;
    EXPECT_EQ(at_p & (Histogram::kSubBuckets - 1), 0u) << "p=2^" << k;
    // The value one below the edge maps into the previous group's last
    // bucket, whose upper bound is exactly p - 1.
    EXPECT_EQ(Histogram::bucket_upper_bound(at_p - 1), p - 1) << "p=2^" << k;
  }
}

TEST(HistogramBuckets, UpperBoundsAreTightAndMonotone) {
  std::uint64_t previous = 0;
  for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
    const std::uint64_t bound = Histogram::bucket_upper_bound(b);
    if (b > 0) {
      EXPECT_GT(bound, previous) << "bucket " << b;
    }
    // The bound itself lands in the bucket; the next value does not.
    EXPECT_EQ(Histogram::bucket_index(bound), b);
    if (bound != std::numeric_limits<std::uint64_t>::max()) {
      EXPECT_EQ(Histogram::bucket_index(bound + 1), b + 1);
    }
    previous = bound;
  }
}

TEST(HistogramBuckets, MaxValueMapsIntoLastBucket) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(Histogram::bucket_index(max), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kBucketCount - 1), max);
}

TEST(HistogramBuckets, RelativeErrorBoundedByOneEighth) {
  // Within one bucket the true value and the reported upper bound differ
  // by less than the bucket width, which is value/8 at worst.
  for (std::uint64_t v : {9ull, 100ull, 1'000ull, 123'456'789ull,
                          (1ull << 40) + 12345ull}) {
    const std::uint64_t bound =
        Histogram::bucket_upper_bound(Histogram::bucket_index(v));
    EXPECT_GE(bound, v);
    EXPECT_LE(bound - v, v / Histogram::kSubBuckets) << "v=" << v;
  }
}

TEST(HistogramRecord, CountsSumsAndClampsNegatives) {
  Histogram hist;
  hist.record(0);
  hist.record(5);
  hist.record(5);
  hist.record(-17);  // clamps to 0
  hist.record(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(),
            10u + static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()));
  EXPECT_EQ(hist.max(), static_cast<std::uint64_t>(
                            std::numeric_limits<std::int64_t>::max()));
  EXPECT_EQ(hist.bucket_count(0), 2u);  // the zero and the clamped negative
  EXPECT_EQ(hist.bucket_count(5), 2u);
}

#endif  // FNDA_NO_TELEMETRY

}  // namespace
}  // namespace fnda::obs
