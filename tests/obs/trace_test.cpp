// TraceSink/TraceScope semantics (clocked spans, null-sink safety, the
// deterministic drop-new ring policy) and Chrome trace JSON
// well-formedness, checked with a small structural scanner.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace fnda::obs {
namespace {

/// Minimal JSON structural check: balanced braces/brackets outside
/// strings, legal escapes, nothing after the root value.  Enough to
/// guarantee chrome://tracing can lex the document.
bool well_formed_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_root = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[':
        if (seen_root && depth == 0) return false;
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        if (depth == 0) seen_root = true;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && seen_root;
}

#ifndef FNDA_NO_TELEMETRY

TEST(TraceSink, ScopeRecordsSpanAgainstSinkClock) {
  TraceSink sink(3, 16);
  std::int64_t now = 100;
  sink.set_clock([&now] { return now; });
  {
    TraceScope scope(&sink, "work", "test");
    now = 250;
  }
  ASSERT_EQ(sink.events().size(), 1u);
  const TraceEvent& event = sink.events().front();
  EXPECT_STREQ(event.name, "work");
  EXPECT_EQ(event.ts_micros, 100);
  EXPECT_EQ(event.dur_micros, 150);
  EXPECT_EQ(event.tid, 3u);
}

TEST(TraceSink, NullSinkScopeIsANoOp) {
  TraceScope scope(nullptr, "free", "test");  // must not crash
}

TEST(TraceSink, RingKeepsFirstEventsAndCountsDrops) {
  TraceSink sink(0, 2);
  sink.record_span("a", "t", 1, 1);
  sink.record_span("b", "t", 2, 1);
  sink.record_span("c", "t", 3, 1);  // dropped: ring keeps the FIRST two
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_STREQ(sink.events()[0].name, "a");
  EXPECT_STREQ(sink.events()[1].name, "b");
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(TraceLog, AppendConcatenatesSinksInOrder) {
  TraceSink driver(0, 8);
  TraceSink shard(1, 8);
  driver.record_span("epoch", "driver", 0, 10);
  shard.record_span("round", "server", 5, 5);

  TraceLog log;
  log.append(driver, "epoch-driver");
  log.append(shard, "shard-0");
  ASSERT_EQ(log.threads.size(), 2u);
  EXPECT_EQ(log.threads[0].name, "epoch-driver");
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_STREQ(log.events[0].name, "epoch");
  EXPECT_STREQ(log.events[1].name, "round");
}

#endif  // FNDA_NO_TELEMETRY

TEST(ChromeTrace, OutputIsWellFormedJson) {
  TraceSink sink(1, 8);
  sink.record_span("span", "cat", 10, 20);
  TraceLog log;
  log.append(sink, "shard-0");

  std::ostringstream os;
  write_chrome_trace(os, log);
  const std::string text = os.str();
  EXPECT_TRUE(well_formed_json(text)) << text;
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
#ifndef FNDA_NO_TELEMETRY
  EXPECT_NE(text.find("\"name\":\"span\""), std::string::npos);
#endif
}

TEST(ChromeTrace, EscapesHostileThreadNames) {
  TraceSink sink(1, 8);
  TraceLog log;
  log.append(sink, "evil\"name\\with\nnoise");

  std::ostringstream os;
  write_chrome_trace(os, log);
  const std::string text = os.str();
  EXPECT_TRUE(well_formed_json(text)) << text;
  EXPECT_NE(text.find("evil\\\"name\\\\with\\nnoise"), std::string::npos);
}

TEST(ChromeTrace, EmptyLogStillProducesADocument) {
  std::ostringstream os;
  write_chrome_trace(os, TraceLog{});
  EXPECT_TRUE(well_formed_json(os.str())) << os.str();
}

}  // namespace
}  // namespace fnda::obs
