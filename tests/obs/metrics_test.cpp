// Registry semantics (find-or-create, kind mismatches, callback metrics)
// and the determinism contract: the merged session snapshot — and its
// Prometheus exposition byte stream — is identical for 1, 2, and 8 worker
// threads, pinned with a golden FNV-1a digest.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "market/throughput.h"
#include "mechanism/search_telemetry.h"
#include "obs/export.h"
#include "protocols/tpd.h"
#include "protocols/tpd_rebate.h"

namespace fnda::obs {
namespace {

[[maybe_unused]] std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(MetricsRegistry, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  counter.add(2);
  EXPECT_EQ(&registry.counter("c"), &counter);
  Histogram& hist = registry.histogram("h");
  EXPECT_EQ(&registry.histogram("h"), &hist);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("name");
  EXPECT_THROW(registry.gauge("name"), std::logic_error);
  EXPECT_THROW(registry.histogram("name"), std::logic_error);
  EXPECT_THROW(registry.counter_fn("name", [] { return 0ull; }),
               std::logic_error);
}

TEST(MetricsRegistry, CallbackMetricsReadAtSnapshotTime) {
  MetricsRegistry registry;
  std::uint64_t cell = 7;
  registry.counter_fn("external", [&cell] { return cell; });
  cell = 11;  // snapshot must see the value at snapshot time, not bind time
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_NE(snap.find("external"), nullptr);
  EXPECT_EQ(snap.find("external")->counter, 11u);
}

TEST(MetricsSnapshot, MergeSumsCountersAndRespectsGaugePolicy) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("c").add(3);
  b.counter("c").add(4);
  a.gauge("total", GaugeMerge::kSum).set(10);
  b.gauge("total", GaugeMerge::kSum).set(5);
  a.gauge("peak", GaugeMerge::kMax).set(10);
  b.gauge("peak", GaugeMerge::kMax).set(25);

  MetricsSnapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
#ifndef FNDA_NO_TELEMETRY
  EXPECT_EQ(merged.find("c")->counter, 7u);
  EXPECT_EQ(merged.find("total")->gauge, 15);
  EXPECT_EQ(merged.find("peak")->gauge, 25);
#else
  EXPECT_EQ(merged.find("c")->counter, 0u);
#endif
}

#ifndef FNDA_NO_TELEMETRY

TEST(MetricsSnapshot, MergeCombinesSparseHistogramBuckets) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.histogram("h").record(1);
  a.histogram("h").record(100);
  b.histogram("h").record(1);
  b.histogram("h").record(5000);

  MetricsSnapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
  const MetricValue* h = merged.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist_count, 4u);
  EXPECT_EQ(h->hist_sum, 5102u);
  EXPECT_EQ(h->hist_max, 5000u);
  ASSERT_EQ(h->buckets.size(), 3u);  // bucket(1) merged; 100 and 5000 distinct
  EXPECT_EQ(h->buckets[0].first, Histogram::bucket_index(1));
  EXPECT_EQ(h->buckets[0].second, 2u);
}

ThroughputConfig session_config(std::size_t threads) {
  ThroughputConfig config;
  config.clients = 240;
  config.rounds = 2;
  config.shards = 8;
  config.threads = threads;
  config.seed = 42;
  return config;
}

TEST(MetricsDeterminism, MergedSnapshotIsBitIdenticalAcrossThreadCounts) {
  const TpdProtocol tpd(Money::from_units(50));
  const std::string one =
      prometheus_text(run_throughput_session(tpd, session_config(1)).metrics);
  const std::string two =
      prometheus_text(run_throughput_session(tpd, session_config(2)).metrics);
  const std::string eight =
      prometheus_text(run_throughput_session(tpd, session_config(8)).metrics);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // Golden digest of the exposition byte stream (integer-only output, so
  // platform-stable).  An intentional metrics change re-pins this.
  EXPECT_EQ(fnv1a(one), 0x21410d4d85f2f248ull) << "exposition:\n" << one;
}

TEST(SearchMetricsDeterminism, ExpositionIsBitIdenticalAcrossThreadCounts) {
  // Run the manipulation-search engine at 1/2/8 threads over the same
  // instance and expose its counters: the exposition byte stream must be
  // identical (SearchStats' deterministic counters do not depend on the
  // interleaving; wall time is excluded by default).
  const TpdWithRebates rebates(money(50));
  SingleUnitInstance instance;
  instance.buyer_values = {money(90), money(70), money(55), money(30)};
  instance.seller_values = {money(20), money(40), money(60), money(80)};
  const DeviationEvaluator evaluator(rebates, instance, {Side::kBuyer, 1});

  auto exposition = [&](std::size_t threads) {
    SearchConfig config;
    config.threads = threads;
    const SearchResult result = find_best_deviation(evaluator, config);
    MetricsRegistry registry;
    bind_search_metrics(registry, result.stats);
    return prometheus_text(registry.snapshot());
  };
  const std::string one = exposition(1);
  EXPECT_EQ(one, exposition(2));
  EXPECT_EQ(one, exposition(8));
  // Golden digest: re-pin on intentional search-counter changes.
  // Re-pinned for fnda_search_pruned_by_warm_floor_total (warm-start
  // co-simulation engine).
  EXPECT_EQ(fnv1a(one), 0xe63c81d6e2786d9ull) << "exposition:\n" << one;
}

TEST(SearchMetricsDeterminism, WallTimeIsOptIn) {
  SearchStats stats;
  stats.wall_time_ns = 1234;
  MetricsRegistry without;
  bind_search_metrics(without, stats);
  EXPECT_EQ(without.snapshot().find("fnda_search_wall_time_ns_total"),
            nullptr);
  MetricsRegistry with;
  bind_search_metrics(with, stats, /*include_wall_time=*/true);
  const MetricsSnapshot snap = with.snapshot();
  ASSERT_NE(snap.find("fnda_search_wall_time_ns_total"), nullptr);
  EXPECT_EQ(snap.find("fnda_search_wall_time_ns_total")->counter, 1234u);
}

#endif  // FNDA_NO_TELEMETRY

}  // namespace
}  // namespace fnda::obs
