#include "core/outcome.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

TEST(OutcomeTest, EmptyOutcome) {
  Outcome outcome;
  EXPECT_EQ(outcome.trade_count(), 0u);
  EXPECT_EQ(outcome.buyer_payments(), Money{});
  EXPECT_EQ(outcome.seller_receipts(), Money{});
  EXPECT_EQ(outcome.auctioneer_revenue(), Money{});
  EXPECT_TRUE(outcome.fills().empty());
}

TEST(OutcomeTest, AggregatesPayments) {
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{0}, money(7));
  outcome.add_buy(BidId{1}, IdentityId{1}, money(7));
  outcome.add_sell(BidId{2}, IdentityId{10}, money(4));
  outcome.add_sell(BidId{3}, IdentityId{11}, money(4));

  EXPECT_EQ(outcome.trade_count(), 2u);
  EXPECT_EQ(outcome.buyer_payments(), money(14));
  EXPECT_EQ(outcome.seller_receipts(), money(8));
  // The PMD condition-2 case: (k-1)(b(k) - s(k)) = 2 * 3 = 6.
  EXPECT_EQ(outcome.auctioneer_revenue(), money(6));
}

TEST(OutcomeTest, PerIdentityViews) {
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{5}, money(4.5));
  outcome.add_sell(BidId{1}, IdentityId{5}, money(4.5));  // same identity
  outcome.add_buy(BidId{2}, IdentityId{6}, money(5));

  EXPECT_EQ(outcome.units_bought(IdentityId{5}), 1u);
  EXPECT_EQ(outcome.units_sold(IdentityId{5}), 1u);
  EXPECT_EQ(outcome.paid_by(IdentityId{5}), money(4.5));
  EXPECT_EQ(outcome.received_by(IdentityId{5}), money(4.5));
  EXPECT_EQ(outcome.units_bought(IdentityId{6}), 1u);
  EXPECT_EQ(outcome.units_sold(IdentityId{6}), 0u);
  // Unknown identity: all zero.
  EXPECT_EQ(outcome.units_bought(IdentityId{99}), 0u);
  EXPECT_EQ(outcome.paid_by(IdentityId{99}), Money{});
}

TEST(OutcomeTest, BidFilledLookup) {
  Outcome outcome;
  outcome.add_buy(BidId{7}, IdentityId{0}, money(1));
  EXPECT_TRUE(outcome.bid_filled(BidId{7}));
  EXPECT_FALSE(outcome.bid_filled(BidId{8}));
}

TEST(OutcomeTest, FillRecordsSideAndPrice) {
  Outcome outcome;
  outcome.add_sell(BidId{3}, IdentityId{2}, money(4));
  ASSERT_EQ(outcome.fills().size(), 1u);
  const Fill& fill = outcome.fills().front();
  EXPECT_EQ(fill.side, Side::kSeller);
  EXPECT_EQ(fill.bid, BidId{3});
  EXPECT_EQ(fill.identity, IdentityId{2});
  EXPECT_EQ(fill.price, money(4));
}

}  // namespace
}  // namespace fnda
