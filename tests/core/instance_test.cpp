#include "core/instance.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

TEST(InstanceTest, InstantiateTruthfulWiresIdentities) {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8)};
  instance.seller_values = {money(2), money(3), money(4)};

  const InstantiatedMarket market = instantiate_truthful(instance);
  EXPECT_EQ(market.book.buyer_count(), 2u);
  EXPECT_EQ(market.book.seller_count(), 3u);
  ASSERT_EQ(market.buyer_identities.size(), 2u);
  ASSERT_EQ(market.seller_identities.size(), 3u);

  // Truth map matches declared values (everyone truthful).
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(market.truth.buyer_values.at(market.buyer_identities[i]),
              instance.buyer_values[i]);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(market.truth.seller_values.at(market.seller_identities[j]),
              instance.seller_values[j]);
  }
}

TEST(InstanceTest, BuyerAndSellerIdentitySpacesDisjoint) {
  SingleUnitInstance instance;
  instance.buyer_values.assign(5, money(1));
  instance.seller_values.assign(5, money(1));
  const InstantiatedMarket market = instantiate_truthful(instance);
  for (IdentityId b : market.buyer_identities) {
    for (IdentityId s : market.seller_identities) {
      EXPECT_NE(b, s);
    }
  }
}

TEST(InstanceTest, EmptyInstance) {
  const InstantiatedMarket market = instantiate_truthful(SingleUnitInstance{});
  EXPECT_EQ(market.book.buyer_count(), 0u);
  EXPECT_EQ(market.book.seller_count(), 0u);
  EXPECT_TRUE(market.truth.buyer_values.empty());
}

}  // namespace
}  // namespace fnda
