#include "core/surplus.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

TrueValuations example1_truth() {
  TrueValuations truth;
  truth.buyer_values = {{IdentityId{0}, money(9)},
                        {IdentityId{1}, money(8)},
                        {IdentityId{2}, money(7)},
                        {IdentityId{3}, money(4)}};
  truth.seller_values = {{IdentityId{10}, money(2)},
                         {IdentityId{11}, money(3)},
                         {IdentityId{12}, money(4)},
                         {IdentityId{13}, money(5)}};
  return truth;
}

TEST(SurplusTest, BalancedTradeAtUniformPrice) {
  // Example 1 truthful PMD outcome: three trades at 4.5.
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{0}, money(4.5));
  outcome.add_buy(BidId{1}, IdentityId{1}, money(4.5));
  outcome.add_buy(BidId{2}, IdentityId{2}, money(4.5));
  outcome.add_sell(BidId{4}, IdentityId{10}, money(4.5));
  outcome.add_sell(BidId{5}, IdentityId{11}, money(4.5));
  outcome.add_sell(BidId{6}, IdentityId{12}, money(4.5));

  const SurplusReport report = realized_surplus(outcome, example1_truth());
  // Buyers: (9-4.5) + (8-4.5) + (7-4.5) = 10.5.
  EXPECT_DOUBLE_EQ(report.buyers, 10.5);
  // Sellers: (4.5-2) + (4.5-3) + (4.5-4) = 4.5.
  EXPECT_DOUBLE_EQ(report.sellers, 4.5);
  EXPECT_DOUBLE_EQ(report.auctioneer, 0.0);
  EXPECT_DOUBLE_EQ(report.except_auctioneer, 15.0);
  // Total equals sum over trades of (b* - s*): (9-2)+(8-3)+(7-4) = 15.
  EXPECT_DOUBLE_EQ(report.total, 15.0);
}

TEST(SurplusTest, AuctioneerKeepsSpread) {
  // Example 2 truthful PMD outcome: two trades, buyers pay 7, sellers get 4.
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{0}, money(7));
  outcome.add_buy(BidId{1}, IdentityId{1}, money(7));
  outcome.add_sell(BidId{2}, IdentityId{10}, money(4));
  outcome.add_sell(BidId{3}, IdentityId{11}, money(4));

  const SurplusReport report = realized_surplus(outcome, example1_truth());
  EXPECT_DOUBLE_EQ(report.buyers, (9 - 7) + (8 - 7));
  EXPECT_DOUBLE_EQ(report.sellers, (4 - 2) + (4 - 3));
  EXPECT_DOUBLE_EQ(report.auctioneer, 2 * (7 - 4));
  EXPECT_DOUBLE_EQ(report.total, (9 - 2) + (8 - 3));
  EXPECT_DOUBLE_EQ(report.except_auctioneer, report.total - 6.0);
}

TEST(SurplusTest, EmptyOutcomeZeroSurplus) {
  const SurplusReport report = realized_surplus(Outcome{}, example1_truth());
  EXPECT_DOUBLE_EQ(report.total, 0.0);
  EXPECT_DOUBLE_EQ(report.except_auctioneer, 0.0);
  EXPECT_DOUBLE_EQ(report.auctioneer, 0.0);
}

TEST(SurplusTest, RebatesShiftSurplusFromAuctioneerToTraders) {
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{0}, money(7));
  outcome.add_buy(BidId{1}, IdentityId{1}, money(7));
  outcome.add_sell(BidId{2}, IdentityId{10}, money(4));
  outcome.add_sell(BidId{3}, IdentityId{11}, money(4));
  // Rebate 1 of the 6 collected back to two participants.
  outcome.add_rebate(IdentityId{0}, money(0.5));
  outcome.add_rebate(IdentityId{13}, money(0.5));  // a non-trader

  const SurplusReport report = realized_surplus(outcome, example1_truth());
  EXPECT_DOUBLE_EQ(report.auctioneer, 5.0);  // 6 collected - 1 rebated
  // Traders' surplus includes the rebates; total is unchanged by the
  // transfer: (9-2) + (8-3) = 12.
  EXPECT_DOUBLE_EQ(report.except_auctioneer, (9 - 7) + (8 - 7) + (4 - 2) +
                                                 (4 - 3) + 1.0);
  EXPECT_DOUBLE_EQ(report.total, 12.0);
  EXPECT_EQ(outcome.rebate_of(IdentityId{0}), money(0.5));
  EXPECT_EQ(outcome.rebate_of(IdentityId{99}), Money{});
}

TEST(SurplusTest, MissingValuationThrows) {
  Outcome outcome;
  outcome.add_buy(BidId{0}, IdentityId{42}, money(1));
  EXPECT_THROW(realized_surplus(outcome, example1_truth()), std::out_of_range);
}

TEST(EfficientSurplusTest, Example1) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(9));
  book.add_buyer(IdentityId{1}, money(8));
  book.add_buyer(IdentityId{2}, money(7));
  book.add_buyer(IdentityId{3}, money(4));
  book.add_seller(IdentityId{10}, money(2));
  book.add_seller(IdentityId{11}, money(3));
  book.add_seller(IdentityId{12}, money(4));
  book.add_seller(IdentityId{13}, money(5));
  Rng rng(1);
  const SortedBook sorted(book, rng);
  // k = 3: (9-2) + (8-3) + (7-4) = 15.
  EXPECT_DOUBLE_EQ(efficient_surplus(sorted), 15.0);
}

TEST(EfficientSurplusTest, NoTradePossible) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(1));
  book.add_seller(IdentityId{1}, money(9));
  Rng rng(1);
  const SortedBook sorted(book, rng);
  EXPECT_DOUBLE_EQ(efficient_surplus(sorted), 0.0);
}

TEST(EfficientSurplusTest, OneSidedBookIsZero) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, money(10));
  Rng rng(1);
  const SortedBook sorted(book, rng);
  EXPECT_DOUBLE_EQ(efficient_surplus(sorted), 0.0);
}

}  // namespace
}  // namespace fnda
