#include "core/order_book.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace fnda {
namespace {

OrderBook example1_book() {
  // Paper Example 1: buyers 9 > 8 > 7 > 4, sellers 2 < 3 < 4 < 5.
  OrderBook book;
  book.add_buyer(IdentityId{0}, Money::from_units(9));
  book.add_buyer(IdentityId{1}, Money::from_units(8));
  book.add_buyer(IdentityId{2}, Money::from_units(7));
  book.add_buyer(IdentityId{3}, Money::from_units(4));
  book.add_seller(IdentityId{10}, Money::from_units(2));
  book.add_seller(IdentityId{11}, Money::from_units(3));
  book.add_seller(IdentityId{12}, Money::from_units(4));
  book.add_seller(IdentityId{13}, Money::from_units(5));
  return book;
}

TEST(OrderBookTest, AddAssignsDistinctBidIds) {
  OrderBook book;
  const BidId a = book.add_buyer(IdentityId{0}, Money::from_units(1));
  const BidId b = book.add_seller(IdentityId{1}, Money::from_units(2));
  EXPECT_NE(a, b);
  EXPECT_EQ(book.buyer_count(), 1u);
  EXPECT_EQ(book.seller_count(), 1u);
}

TEST(OrderBookTest, RejectsValuesOutsideDomain) {
  OrderBook book;
  EXPECT_THROW(book.add_buyer(IdentityId{0}, Money::from_units(-1)),
               std::invalid_argument);
  EXPECT_THROW(
      book.add_seller(IdentityId{0}, Money::from_units(2'000'000'000)),
      std::invalid_argument);
}

TEST(OrderBookTest, RejectsDegenerateDomain) {
  EXPECT_THROW(OrderBook(ValueDomain{Money::from_units(5), Money::from_units(5)}),
               std::invalid_argument);
}

TEST(SortedBookTest, RanksMatchPaperConvention) {
  OrderBook book = example1_book();
  Rng rng(1);
  const SortedBook sorted(book, rng);

  ASSERT_EQ(sorted.buyer_count(), 4u);
  ASSERT_EQ(sorted.seller_count(), 4u);
  // b(1) >= b(2) >= ... (highest first).
  EXPECT_EQ(sorted.buyer_value(1), Money::from_units(9));
  EXPECT_EQ(sorted.buyer_value(2), Money::from_units(8));
  EXPECT_EQ(sorted.buyer_value(3), Money::from_units(7));
  EXPECT_EQ(sorted.buyer_value(4), Money::from_units(4));
  // s(1) <= s(2) <= ... (lowest first).
  EXPECT_EQ(sorted.seller_value(1), Money::from_units(2));
  EXPECT_EQ(sorted.seller_value(2), Money::from_units(3));
  EXPECT_EQ(sorted.seller_value(3), Money::from_units(4));
  EXPECT_EQ(sorted.seller_value(4), Money::from_units(5));
}

TEST(SortedBookTest, SentinelRanks) {
  OrderBook book = example1_book();
  Rng rng(1);
  const SortedBook sorted(book, rng);
  EXPECT_EQ(sorted.buyer_value(5), book.domain().lowest);
  EXPECT_EQ(sorted.seller_value(5), book.domain().highest);
}

TEST(SortedBookTest, RankZeroAndBeyondSentinelThrow) {
  OrderBook book = example1_book();
  Rng rng(1);
  const SortedBook sorted(book, rng);
  EXPECT_THROW(sorted.buyer_value(0), std::out_of_range);
  EXPECT_THROW(sorted.buyer_value(6), std::out_of_range);
  EXPECT_THROW(sorted.seller_value(0), std::out_of_range);
  EXPECT_THROW(sorted.seller_value(6), std::out_of_range);
  EXPECT_THROW(sorted.buyer(5), std::out_of_range);
  EXPECT_THROW(sorted.seller(0), std::out_of_range);
}

TEST(SortedBookTest, EmptyBook) {
  OrderBook book;
  Rng rng(1);
  const SortedBook sorted(book, rng);
  EXPECT_EQ(sorted.buyer_count(), 0u);
  EXPECT_EQ(sorted.seller_count(), 0u);
  EXPECT_EQ(sorted.efficient_trade_count(), 0u);
  // Sentinels still work at rank 1.
  EXPECT_EQ(sorted.buyer_value(1), book.domain().lowest);
  EXPECT_EQ(sorted.seller_value(1), book.domain().highest);
}

TEST(SortedBookTest, CountsAtThreshold) {
  OrderBook book = example1_book();
  Rng rng(1);
  const SortedBook sorted(book, rng);
  // r = 4.5: buyers {9, 8, 7} >= r; sellers {2, 3, 4} <= r.
  EXPECT_EQ(sorted.buyers_at_or_above(money(4.5)), 3u);
  EXPECT_EQ(sorted.sellers_at_or_below(money(4.5)), 3u);
  // Boundary inclusion: a value equal to r counts on both sides.
  EXPECT_EQ(sorted.buyers_at_or_above(Money::from_units(4)), 4u);
  EXPECT_EQ(sorted.sellers_at_or_below(Money::from_units(4)), 3u);
  EXPECT_EQ(sorted.buyers_at_or_above(Money::from_units(100)), 0u);
  EXPECT_EQ(sorted.sellers_at_or_below(Money::from_units(0)), 0u);
}

TEST(SortedBookTest, EfficientTradeCountExample1) {
  OrderBook book = example1_book();
  Rng rng(1);
  const SortedBook sorted(book, rng);
  // b(3) = 7 >= s(3) = 4 but b(4) = 4 < s(4) = 5 -> k = 3.
  EXPECT_EQ(sorted.efficient_trade_count(), 3u);
}

TEST(SortedBookTest, EfficientTradeCountZeroWhenNoOverlap) {
  OrderBook book;
  book.add_buyer(IdentityId{0}, Money::from_units(2));
  book.add_seller(IdentityId{1}, Money::from_units(10));
  Rng rng(1);
  const SortedBook sorted(book, rng);
  EXPECT_EQ(sorted.efficient_trade_count(), 0u);
}

TEST(SortedBookTest, TieBreakingIsRandomButValueOrdered) {
  OrderBook book;
  for (std::uint64_t i = 0; i < 6; ++i) {
    book.add_buyer(IdentityId{i}, Money::from_units(5));
  }
  // Count how often each identity lands at rank 1 across seeds.
  std::map<std::uint64_t, int> first_counts;
  for (std::uint64_t seed = 0; seed < 600; ++seed) {
    Rng rng(seed);
    const SortedBook sorted(book, rng);
    ++first_counts[sorted.buyer(1).identity.value()];
    for (std::size_t rank = 1; rank + 1 <= 6; ++rank) {
      EXPECT_GE(sorted.buyer_value(rank), sorted.buyer_value(rank + 1));
    }
  }
  EXPECT_EQ(first_counts.size(), 6u) << "every tied bid should sometimes win";
  for (const auto& [identity, count] : first_counts) {
    EXPECT_GT(count, 40) << "identity " << identity
                         << " underrepresented at rank 1";
  }
}

TEST(SortedBookTest, SameSeedSameOrder) {
  OrderBook book;
  for (std::uint64_t i = 0; i < 8; ++i) {
    book.add_buyer(IdentityId{i}, Money::from_units(5));
  }
  Rng rng1(99);
  Rng rng2(99);
  const SortedBook a(book, rng1);
  const SortedBook b(book, rng2);
  for (std::size_t rank = 1; rank <= 8; ++rank) {
    EXPECT_EQ(a.buyer(rank).identity, b.buyer(rank).identity);
  }
}

}  // namespace
}  // namespace fnda
