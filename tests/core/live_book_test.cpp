// LiveBook: incremental ranking vs the shuffle+stable-sort reference.
//
// The load-bearing property is bit-identity: for the same arrival
// sequence and the same RNG stream, finalize_ties must produce exactly
// the ranking SortedBook's rebuild produces AND leave the rng in exactly
// the state rebuild leaves it, so every protocol — including the
// randomized ones that keep drawing from the same stream — clears to the
// same outcome.  The equivalence tests here sweep book sizes from empty
// to 2k entries, force maximal tie runs (all-equal-value books), and
// check the post-ranking rng draw alongside the outcome.
#include "core/live_book.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/instance.h"
#include "core/protocol.h"
#include "protocols/efficient.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "protocols/tpd_rebate.h"
#include "protocols/vcg.h"

namespace fnda {
namespace {

Money money(std::int64_t units) { return Money::from_units(units); }

/// One arrival sequence fed to both book representations.
struct Arrival {
  Side side;
  IdentityId identity;
  Money value;
};

/// Random arrivals with a deliberately narrow value range so equal-value
/// runs are long (value_span == 0 makes the whole lane one tie run).
std::vector<Arrival> random_arrivals(std::size_t buyers, std::size_t sellers,
                                     std::int64_t value_span, Rng& rng) {
  std::vector<Arrival> arrivals;
  arrivals.reserve(buyers + sellers);
  for (std::size_t i = 0; i < buyers; ++i) {
    arrivals.push_back(Arrival{
        Side::kBuyer, IdentityId{i},
        money(40 + (value_span > 0
                        ? static_cast<std::int64_t>(rng.below(
                              static_cast<std::uint64_t>(value_span)))
                        : 0))});
  }
  for (std::size_t j = 0; j < sellers; ++j) {
    arrivals.push_back(Arrival{
        Side::kSeller, IdentityId{kSellerIdentityBase + j},
        money(30 + (value_span > 0
                        ? static_cast<std::int64_t>(rng.below(
                              static_cast<std::uint64_t>(value_span)))
                        : 0))});
  }
  rng.shuffle(arrivals.begin(), arrivals.end());
  return arrivals;
}

void feed(const std::vector<Arrival>& arrivals, OrderBook& book,
          LiveBook& live) {
  for (const Arrival& a : arrivals) {
    const BidId raw = book.add(a.side, a.identity, a.value);
    const BidId incremental = live.add(a.side, a.identity, a.value);
    // Ids are assigned book-uniquely in arrival order on both paths, so
    // fills referencing them are comparable entry for entry.
    ASSERT_EQ(raw, incremental);
  }
}

TEST(LiveBookTest, RankingMatchesShuffleStableSortReference) {
  Rng meta(0x11feb00c);
  const struct {
    std::size_t buyers, sellers;
    std::int64_t span;
  } shapes[] = {
      {0, 0, 10},  {1, 0, 10},  {0, 1, 10},   {1, 1, 1},
      {7, 5, 3},   {40, 40, 1}, {40, 40, 0},  {128, 100, 5},
      {500, 500, 2}, {1000, 1000, 7}, {997, 1003, 0},
  };
  for (const auto& shape : shapes) {
    for (int run = 0; run < 8; ++run) {
      const std::vector<Arrival> arrivals =
          random_arrivals(shape.buyers, shape.sellers, shape.span, meta);
      OrderBook book;
      LiveBook live;
      feed(arrivals, book, live);

      const std::uint64_t seed = meta();
      Rng reference_rng(seed);
      const SortedBook reference(book, reference_rng);
      Rng live_rng(seed);
      live.finalize_ties(live_rng);

      EXPECT_EQ(reference.buyers(), live.ranked_buyers());
      EXPECT_EQ(reference.sellers(), live.ranked_sellers());
      // Same draws consumed: the next value from either stream agrees, so
      // protocol-internal randomness downstream is unshifted.
      EXPECT_EQ(reference_rng(), live_rng());
    }
  }
}

TEST(LiveBookTest, OutcomeEquivalenceAcrossAllProtocols) {
  std::vector<ProtocolPtr> protocols;
  protocols.push_back(std::make_unique<TpdProtocol>(money(50)));
  protocols.push_back(std::make_unique<PmdProtocol>());
  protocols.push_back(std::make_unique<EfficientClearing>());
  protocols.push_back(std::make_unique<VcgDoubleAuction>());
  protocols.push_back(std::make_unique<KDoubleAuction>(0.5));
  protocols.push_back(std::make_unique<RandomThresholdProtocol>(money(50)));
  protocols.push_back(std::make_unique<TpdWithRebates>(money(50)));

  Rng meta(0xabcde);
  for (int run = 0; run < 60; ++run) {
    const std::size_t buyers = meta.below(33);
    const std::size_t sellers = meta.below(33);
    const std::int64_t span = static_cast<std::int64_t>(meta.below(4));
    const std::vector<Arrival> arrivals =
        random_arrivals(buyers, sellers, span, meta);
    OrderBook book;
    LiveBook live;
    feed(arrivals, book, live);
    const std::uint64_t seed = meta();

    Rng live_rank_rng(seed);
    live.finalize_ties(live_rank_rng);
    const SortedBook ranked = live.to_sorted();

    for (const ProtocolPtr& protocol : protocols) {
      // Seed path: rank + clear from one stream.
      Rng seed_rng(seed);
      const Outcome reference = protocol->clear(book, seed_rng);
      // Live path: the retained post-ranking stream continues into the
      // protocol, exactly as AuctionServer::clear_round does.
      Rng clear_rng = live_rank_rng;
      const Outcome incremental = protocol->clear_sorted(ranked, clear_rng);

      EXPECT_EQ(reference.fills(), incremental.fills()) << protocol->name();
      EXPECT_EQ(reference.auctioneer_revenue(),
                incremental.auctioneer_revenue())
          << protocol->name();
      // Randomized protocols must also have consumed identical draws.
      EXPECT_EQ(seed_rng(), clear_rng()) << protocol->name();
    }
  }
}

TEST(LiveBookTest, AllEqualValueBookIsOneShuffledRun) {
  // Every entry ties: the final ranking IS the footnote-5 permutation.
  OrderBook book;
  LiveBook live;
  std::vector<Arrival> arrivals;
  for (std::size_t i = 0; i < 64; ++i) {
    arrivals.push_back(Arrival{Side::kBuyer, IdentityId{i}, money(42)});
  }
  for (std::size_t j = 0; j < 64; ++j) {
    arrivals.push_back(
        Arrival{Side::kSeller, IdentityId{kSellerIdentityBase + j},
                money(42)});
  }
  feed(arrivals, book, live);
  Rng a(7);
  Rng b(7);
  const SortedBook reference(book, a);
  live.finalize_ties(b);
  EXPECT_EQ(reference.buyers(), live.ranked_buyers());
  EXPECT_EQ(reference.sellers(), live.ranked_sellers());
  EXPECT_EQ(a(), b());
}

TEST(LiveBookTest, RejectsValuesOutsideDomain) {
  LiveBook live(ValueDomain{money(10), money(20)});
  EXPECT_THROW(live.add_buyer(IdentityId{1}, money(9)),
               std::invalid_argument);
  EXPECT_THROW(live.add_seller(IdentityId{kSellerIdentityBase}, money(21)),
               std::invalid_argument);
  EXPECT_NO_THROW(live.add_buyer(IdentityId{1}, money(10)));
  EXPECT_NO_THROW(live.add_seller(IdentityId{kSellerIdentityBase},
                                  money(20)));
}

TEST(LiveBookTest, AddAfterFinalizeThrowsUntilReset) {
  LiveBook live;
  live.add_buyer(IdentityId{1}, money(50));
  Rng rng(3);
  live.finalize_ties(rng);
  EXPECT_TRUE(live.finalized());
  EXPECT_THROW(live.add_buyer(IdentityId{2}, money(60)), std::logic_error);
  live.reset(live.domain());
  EXPECT_FALSE(live.finalized());
  // Ids are book-unique per round: after reset they restart at 0, the
  // same contract a fresh OrderBook gives the server.
  EXPECT_EQ(live.add_buyer(IdentityId{2}, money(60)), BidId{0});
}

TEST(LiveBookTest, StatsCountWorkAndNeverSortAtClose) {
  LiveBook live;
  // Descending buyer arrivals insert at the tail (no shifts); ascending
  // arrivals insert at the head (max shifts).
  live.add_buyer(IdentityId{1}, money(90));
  live.add_buyer(IdentityId{2}, money(80));
  live.add_buyer(IdentityId{3}, money(85));  // between: shifts 1 entry
  live.add_seller(IdentityId{kSellerIdentityBase}, money(10));
  Rng rng(5);
  live.finalize_ties(rng);
  const LiveBookStats& stats = live.stats();
  EXPECT_EQ(stats.inserts, 4u);
  EXPECT_EQ(stats.entries_shifted, 1u);
  EXPECT_EQ(stats.rounds_finalized, 1u);
  EXPECT_EQ(stats.tie_entries_permuted, 0u);  // no equal-value runs
  EXPECT_EQ(stats.sorts_at_close, 0u);

  // Counters are cumulative across reset (they describe the engine, not
  // one round) and tie runs are counted when present.
  live.reset(live.domain());
  live.add_buyer(IdentityId{1}, money(70));
  live.add_buyer(IdentityId{2}, money(70));
  live.finalize_ties(rng);
  EXPECT_EQ(live.stats().inserts, 6u);
  EXPECT_EQ(live.stats().rounds_finalized, 2u);
  EXPECT_EQ(live.stats().tie_entries_permuted, 2u);
  EXPECT_EQ(live.stats().sorts_at_close, 0u);
}

TEST(LiveBookTest, MultiChunkBooksMatchReferenceAndSplitChunks) {
  // 3000/2900 entries span dozens of 128-entry chunks per lane, so every
  // insert exercises the chunk-selection search and many force splits;
  // the ranking must still match the shuffle+stable-sort reference and
  // the RNG stream must stay aligned.
  Rng meta(0x600dc0de);
  for (const std::int64_t span : {std::int64_t{0}, std::int64_t{3},
                                  std::int64_t{1000}}) {
    const std::vector<Arrival> arrivals = random_arrivals(3000, 2900, span,
                                                          meta);
    OrderBook book;
    LiveBook live;
    feed(arrivals, book, live);
    // All-equal books (span 0) append every entry at the lane tail, which
    // opens fresh chunks without ever splitting one; any value spread
    // forces mid-lane inserts and therefore splits at this size.
    if (span > 0) EXPECT_GT(live.stats().chunk_splits, 0u);

    const std::uint64_t seed = meta();
    Rng reference_rng(seed);
    const SortedBook reference(book, reference_rng);
    Rng live_rng(seed);
    live.finalize_ties(live_rng);
    EXPECT_EQ(reference.buyers(), live.ranked_buyers());
    EXPECT_EQ(reference.sellers(), live.ranked_sellers());
    EXPECT_EQ(reference_rng(), live_rng());
  }
}

TEST(LiveBookTest, SortedArrivalOrdersAreAdversarialButExact) {
  // Strictly ascending and strictly descending arrivals are the gap
  // buffer's worst cases: one order appends at the lane tail, the other
  // inserts at the head of the first chunk every time (maximum shifting
  // and splitting).  Both must reproduce the reference ranking exactly.
  for (const bool ascending : {false, true}) {
    OrderBook book;
    LiveBook live;
    const std::size_t n = 1500;  // ~12 chunks per lane
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t units =
          static_cast<std::int64_t>(ascending ? 10 + i : 10 + (n - 1 - i));
      const BidId raw = book.add(Side::kBuyer, IdentityId{i}, money(units));
      ASSERT_EQ(raw, live.add(Side::kBuyer, IdentityId{i}, money(units)));
      const BidId raw_s =
          book.add(Side::kSeller, IdentityId{kSellerIdentityBase + i},
                   money(units));
      ASSERT_EQ(raw_s,
                live.add(Side::kSeller, IdentityId{kSellerIdentityBase + i},
                         money(units)));
    }
    const std::uint64_t seed = 0x51517 + (ascending ? 1 : 0);
    Rng reference_rng(seed);
    const SortedBook reference(book, reference_rng);
    Rng live_rng(seed);
    live.finalize_ties(live_rng);
    EXPECT_EQ(reference.buyers(), live.ranked_buyers());
    EXPECT_EQ(reference.sellers(), live.ranked_sellers());
    EXPECT_GT(live.stats().chunk_splits, 0u);
    // Distinct values everywhere: the tie machinery must not fire.
    EXPECT_EQ(live.stats().tie_entries_permuted, 0u);
  }
}

TEST(LiveBookTest, EmitMatchesToSortedAndReusesBuffers) {
  Rng meta(0x5151);
  const std::vector<Arrival> arrivals = random_arrivals(80, 80, 2, meta);
  OrderBook book;
  LiveBook live;
  feed(arrivals, book, live);
  Rng rng(9);
  live.finalize_ties(rng);

  const SortedBook fresh = live.to_sorted();
  SortedBook scratch;
  live.emit(scratch);
  EXPECT_EQ(fresh.buyers(), scratch.buyers());
  EXPECT_EQ(fresh.sellers(), scratch.sellers());

  // A second emit into grown capacity must not reallocate the lanes.
  live.reset(live.domain());
  live.add_buyer(IdentityId{1}, money(55));
  Rng rng2(11);
  live.finalize_ties(rng2);
  const BidEntry* before = scratch.buyers().data();
  live.emit(scratch);
  EXPECT_EQ(scratch.buyers().data(), before);
  EXPECT_EQ(scratch.buyer_count(), 1u);
  EXPECT_EQ(scratch.seller_count(), 0u);
}

TEST(LiveBookTest, ResetKeepsLaneCapacity) {
  LiveBook live;
  for (std::size_t i = 0; i < 256; ++i) {
    live.add_buyer(IdentityId{i}, money(40 + static_cast<std::int64_t>(i)));
  }
  Rng rng(1);
  live.finalize_ties(rng);
  live.reset(live.domain());
  EXPECT_EQ(live.buyer_count(), 0u);
  // Warm path: refilling to the previous size must not move the lane.
  live.add_buyer(IdentityId{0}, money(41));
  const BidEntry* data = live.ranked_buyers().data();
  for (std::size_t i = 1; i < 256; ++i) {
    live.add_buyer(IdentityId{i}, money(40 + static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(live.ranked_buyers().data(), data);
}

}  // namespace
}  // namespace fnda
