#include "core/validation.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

struct Fixture {
  OrderBook book;
  BidId buy_high, buy_low, sell_low, sell_high;

  Fixture() {
    buy_high = book.add_buyer(IdentityId{0}, money(9));
    buy_low = book.add_buyer(IdentityId{1}, money(4));
    sell_low = book.add_seller(IdentityId{10}, money(2));
    sell_high = book.add_seller(IdentityId{11}, money(8));
  }
};

TEST(ValidationTest, CleanOutcomePasses) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_high, IdentityId{0}, money(5));
  outcome.add_sell(f.sell_low, IdentityId{10}, money(5));
  EXPECT_TRUE(validate_outcome(f.book, outcome).empty());
  EXPECT_NO_THROW(expect_valid_outcome(f.book, outcome));
}

TEST(ValidationTest, EmptyOutcomePasses) {
  Fixture f;
  EXPECT_TRUE(validate_outcome(f.book, Outcome{}).empty());
}

TEST(ValidationTest, DetectsUnbalancedUnits) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_high, IdentityId{0}, money(5));
  const auto errors = validate_outcome(f.book, outcome);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("goods not conserved"), std::string::npos);
}

TEST(ValidationTest, DetectsUnknownBid) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(BidId{999}, IdentityId{0}, money(5));
  outcome.add_sell(f.sell_low, IdentityId{10}, money(5));
  const auto errors = validate_outcome(f.book, outcome);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("unknown"), std::string::npos);
}

TEST(ValidationTest, DetectsWrongSideFill) {
  Fixture f;
  Outcome outcome;
  // A seller bid appearing as a buy fill.
  outcome.add_buy(f.sell_low, IdentityId{10}, money(5));
  outcome.add_sell(f.sell_high, IdentityId{11}, money(8));
  const auto errors = validate_outcome(f.book, outcome);
  EXPECT_FALSE(errors.empty());
}

TEST(ValidationTest, DetectsBuyerIrViolation) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_low, IdentityId{1}, money(6));  // declared 4, pays 6
  outcome.add_sell(f.sell_low, IdentityId{10}, money(2));
  const auto errors = validate_outcome(f.book, outcome);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("buyer IR violated"), std::string::npos);
}

TEST(ValidationTest, DetectsSellerIrViolation) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_high, IdentityId{0}, money(9));
  outcome.add_sell(f.sell_high, IdentityId{11}, money(3));  // declared 8
  const auto errors = validate_outcome(f.book, outcome);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("seller IR violated"), std::string::npos);
}

TEST(ValidationTest, DetectsDoubleFill) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_high, IdentityId{0}, money(5));
  outcome.add_buy(f.buy_high, IdentityId{0}, money(5));
  outcome.add_sell(f.sell_low, IdentityId{10}, money(5));
  outcome.add_sell(f.sell_high, IdentityId{11}, money(8));
  const auto errors = validate_outcome(f.book, outcome);
  bool found = false;
  for (const auto& e : errors) {
    found |= e.find("filled more than once") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(ValidationTest, DetectsIdentityMismatch) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_high, IdentityId{77}, money(5));
  outcome.add_sell(f.sell_low, IdentityId{10}, money(5));
  const auto errors = validate_outcome(f.book, outcome);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("does not match"), std::string::npos);
}

TEST(ValidationTest, DetectsAuctioneerSubsidy) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_high, IdentityId{0}, money(3));
  outcome.add_sell(f.sell_high, IdentityId{11}, money(9));
  const auto errors = validate_outcome(f.book, outcome);
  bool found = false;
  for (const auto& e : errors) {
    found |= e.find("subsidises") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(ValidationTest, ExpectValidThrowsWithAllViolations) {
  Fixture f;
  Outcome outcome;
  outcome.add_buy(f.buy_low, IdentityId{1}, money(6));
  try {
    expect_valid_outcome(f.book, outcome);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("violation"), std::string::npos);
    EXPECT_NE(what.find("buyer IR"), std::string::npos);
  }
}

}  // namespace
}  // namespace fnda
