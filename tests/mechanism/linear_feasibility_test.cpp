#include "mechanism/linear_feasibility.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

TEST(LinearFeasibilityTest, EmptySystemIsFeasible) {
  EXPECT_TRUE(feasible({}, 0));
  EXPECT_TRUE(feasible({}, 3));
}

TEST(LinearFeasibilityTest, SingleVariableBox) {
  // 1 <= x <= 2.
  std::vector<LinearConstraint> ok = {{{1.0}, 2.0}, {{-1.0}, -1.0}};
  EXPECT_TRUE(feasible(ok, 1));
  // 2 <= x <= 1: empty.
  std::vector<LinearConstraint> bad = {{{1.0}, 1.0}, {{-1.0}, -2.0}};
  EXPECT_FALSE(feasible(bad, 1));
}

TEST(LinearFeasibilityTest, UnboundedDirectionsAreFine) {
  // x <= 5 only: feasible (x can be arbitrarily negative).
  EXPECT_TRUE(feasible({{{1.0}, 5.0}}, 1));
  EXPECT_TRUE(feasible({{{-1.0}, 5.0}}, 1));
}

TEST(LinearFeasibilityTest, TwoVariableSystem) {
  // x + y <= 1, x >= 0, y >= 0: feasible triangle.
  std::vector<LinearConstraint> triangle = {
      {{1.0, 1.0}, 1.0}, {{-1.0, 0.0}, 0.0}, {{0.0, -1.0}, 0.0}};
  EXPECT_TRUE(feasible(triangle, 2));
  // Add x + y >= 2: infeasible.
  triangle.push_back({{-1.0, -1.0}, -2.0});
  EXPECT_FALSE(feasible(triangle, 2));
}

TEST(LinearFeasibilityTest, EqualityHelper) {
  // x + y == 3 with x <= 1, y <= 1: infeasible.
  auto constraints = equality({1.0, 1.0}, 3.0);
  constraints.push_back({{1.0, 0.0}, 1.0});
  constraints.push_back({{0.0, 1.0}, 1.0});
  EXPECT_FALSE(feasible(constraints, 2));
  // Relax y <= 2.5: feasible (x=0.5, y=2.5).
  auto relaxed = equality({1.0, 1.0}, 3.0);
  relaxed.push_back({{1.0, 0.0}, 1.0});
  relaxed.push_back({{0.0, 1.0}, 2.5});
  EXPECT_TRUE(feasible(relaxed, 2));
}

TEST(LinearFeasibilityTest, DegenerateZeroRow) {
  // 0*x <= -1 is an immediate contradiction; 0*x <= 1 is vacuous.
  EXPECT_FALSE(feasible({{{0.0}, -1.0}}, 1));
  EXPECT_TRUE(feasible({{{0.0}, 1.0}}, 1));
}

TEST(LinearFeasibilityTest, ThreeVariableChain) {
  // x <= y <= z <= x - 1: a cycle that forces x <= x - 1: infeasible.
  std::vector<LinearConstraint> cycle = {
      {{1.0, -1.0, 0.0}, 0.0},   // x - y <= 0
      {{0.0, 1.0, -1.0}, 0.0},   // y - z <= 0
      {{-1.0, 0.0, 1.0}, -1.0},  // z - x <= -1
  };
  EXPECT_FALSE(feasible(cycle, 3));
  // Make the last link z <= x + 1: feasible.
  cycle[2] = {{-1.0, 0.0, 1.0}, 1.0};
  EXPECT_TRUE(feasible(cycle, 3));
}

TEST(LinearFeasibilityTest, ArityMismatchThrows) {
  EXPECT_THROW(feasible({{{1.0, 2.0}, 0.0}}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fnda
