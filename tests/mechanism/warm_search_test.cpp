// Warm-start vs cold-start equivalence fuzz (ISSUE 9 satellite): under
// randomized book mutation sequences — inserts, erases, withdrawals —
// the cached-SearchState path must return bit-identical best responses
// to a fresh find_best_deviation_serial on the same book, at engine
// thread counts 1, 2, and 8.  This is the soundness contract of
// SearchConfig::warm_floor (strictly-below pruning seeded only with
// achieved, in-space utilities) exercised end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "mechanism/manipulation.h"
#include "protocols/tpd.h"
#include "protocols/tpd_rebate.h"

namespace fnda {
namespace {

Money money(std::int64_t units) { return Money::from_units(units); }

/// Ranked lane from a raw value list: buyers descending, sellers
/// ascending, ids positional (the evaluator re-numbers them anyway).
std::vector<BidEntry> lane(std::vector<Money> values, Side side) {
  if (side == Side::kBuyer) {
    std::sort(values.begin(), values.end(),
              [](Money a, Money b) { return a > b; });
  } else {
    std::sort(values.begin(), values.end());
  }
  std::vector<BidEntry> entries;
  entries.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    entries.push_back(BidEntry{BidId{i}, IdentityId{i}, values[i]});
  }
  return entries;
}

/// One random mutation: insert, erase, or no-op (the no-op rounds are
/// what exercises the tier-1 cache-hit/revalidation path).
void mutate(Rng& rng, std::vector<Money>& buyers,
            std::vector<Money>& sellers) {
  switch (rng.below(5)) {
    case 0:
      buyers.push_back(money(rng.uniform_int(1, 100)));
      break;
    case 1:
      sellers.push_back(money(rng.uniform_int(1, 100)));
      break;
    case 2:
      if (buyers.size() > 2) {
        buyers.erase(buyers.begin() +
                     static_cast<std::ptrdiff_t>(rng.below(buyers.size())));
      }
      break;
    case 3:
      if (sellers.size() > 2) {
        sellers.erase(sellers.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(sellers.size())));
      }
      break;
    default:
      break;  // unchanged book: cached result must be reusable
  }
}

void run_fuzz(const DoubleAuctionProtocol& protocol, std::size_t threads,
              std::size_t replicates, std::uint64_t seed) {
  const ValueDomain domain{money(0), money(100)};
  // True value deliberately off-grid: the truthful strategy must still be
  // a legal warm floor (it is base-evaluated, not enumerated).
  const Money true_value = money(57);
  const Side role = Side::kBuyer;

  SearchConfig config;
  config.max_declarations = 2;
  config.threads = threads;
  config.grid_override = {money(0),  money(20), money(40),
                          money(60), money(80), money(100)};

  Rng rng(seed);
  std::vector<Money> buyers = {money(90), money(70), money(55), money(30)};
  std::vector<Money> sellers = {money(20), money(40), money(60), money(80)};
  SearchState state;

  for (std::size_t iter = 0; iter < 24; ++iter) {
    mutate(rng, buyers, sellers);
    EvalConfig eval;
    eval.seed = 0x5eed;
    eval.replicates = replicates;
    const DeviationEvaluator evaluator(protocol, domain, role, true_value,
                                       lane(buyers, Side::kBuyer),
                                       lane(sellers, Side::kSeller), eval);
    const SearchResult warm =
        find_best_deviation_warm(evaluator, config, state);
    SearchConfig serial_config = config;
    serial_config.threads = 1;
    const SearchResult serial =
        find_best_deviation_serial(evaluator, serial_config);

    ASSERT_EQ(warm.best_utility, serial.best_utility)
        << "iter " << iter << " threads " << threads;
    ASSERT_EQ(warm.truthful_utility, serial.truthful_utility);
    ASSERT_EQ(warm.best_strategy.declarations,
              serial.best_strategy.declarations)
        << "iter " << iter << " threads " << threads;
    ASSERT_EQ(warm.strategies_evaluated, serial.strategies_evaluated);
  }
  // The mutation mix guarantees both warm tiers fired (no-op rounds hit
  // the cache; mutations run floor-seeded searches).
  EXPECT_GT(state.warm_hits, 0u);
  EXPECT_GT(state.warm_seeded, 0u);
  EXPECT_EQ(state.cold_runs, 1u);  // only the very first search is cold
}

TEST(WarmSearch, EquivalentToSerialUnderRandomMutationsThreads1) {
  run_fuzz(TpdProtocol(money(50)), 1, 1, 0xf00d1);
}

TEST(WarmSearch, EquivalentToSerialUnderRandomMutationsThreads2) {
  run_fuzz(TpdProtocol(money(50)), 2, 1, 0xf00d2);
}

TEST(WarmSearch, EquivalentToSerialUnderRandomMutationsThreads8) {
  run_fuzz(TpdProtocol(money(50)), 8, 1, 0xf00d8);
}

TEST(WarmSearch, EquivalentWithRebateProtocolAndReplicates) {
  // Replicates > 1 disables the O(log n) revalidation fast path; the
  // cache must fall back to a full evaluate and stay equivalent.
  run_fuzz(TpdWithRebates(money(50)), 2, 2, 0xcafe);
}

TEST(WarmSearch, WarmFloorNeverPrunesTheWinner) {
  // Directed check of the strict-inequality rule: seed the floor at
  // exactly the optimum's utility and require the identical first-
  // achiever to survive.
  const TpdProtocol protocol(money(50));
  const ValueDomain domain{money(0), money(100)};
  const std::vector<BidEntry> buyers =
      lane({money(90), money(70), money(30)}, Side::kBuyer);
  const std::vector<BidEntry> sellers =
      lane({money(20), money(40), money(80)}, Side::kSeller);
  const DeviationEvaluator evaluator(protocol, domain, Side::kBuyer,
                                     money(57), buyers, sellers, EvalConfig{});
  SearchConfig config;
  config.max_declarations = 2;
  config.grid_override = {money(0),  money(20), money(40),
                          money(60), money(80), money(100)};
  const SearchResult cold = find_best_deviation(evaluator, config);
  SearchConfig floored = config;
  floored.warm_floor = cold.best_utility;
  const SearchResult warm = find_best_deviation(evaluator, floored);
  EXPECT_EQ(warm.best_utility, cold.best_utility);
  EXPECT_EQ(warm.best_strategy.declarations, cold.best_strategy.declarations);
}

}  // namespace
}  // namespace fnda
