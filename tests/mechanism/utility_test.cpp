#include "mechanism/utility.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

const UtilityModel kModel{};

TEST(UtilityModelTest, NoTradeIsZeroForBothRoles) {
  EXPECT_DOUBLE_EQ(kModel.evaluate(Side::kBuyer, money(9), {}), 0.0);
  EXPECT_DOUBLE_EQ(kModel.evaluate(Side::kSeller, money(4), {}), 0.0);
}

TEST(UtilityModelTest, BuyerGainsValueMinusPrice) {
  AccountPosition position;
  position.bought = 1;
  position.paid = money(4.5);
  EXPECT_DOUBLE_EQ(kModel.evaluate(Side::kBuyer, money(7), position), 2.5);
}

TEST(UtilityModelTest, SellerGainsPriceMinusValue) {
  AccountPosition position;
  position.sold = 1;
  position.received = money(4.5);
  EXPECT_DOUBLE_EQ(kModel.evaluate(Side::kSeller, money(3), position), 1.5);
}

TEST(UtilityModelTest, SecondUnitIsWorthless) {
  AccountPosition position;
  position.bought = 2;
  position.paid = money(10);
  // One unit valued at 7; the second adds nothing; paid 10 total.
  EXPECT_DOUBLE_EQ(kModel.evaluate(Side::kBuyer, money(7), position), -3.0);
}

TEST(UtilityModelTest, SellerBuyingOwnGoodBackNetsPriceDifference) {
  // The paper's seller-as-fake-buyer case: sells at 4.5, buys at 4.9.
  AccountPosition position;
  position.sold = 1;
  position.received = money(4.5);
  position.bought = 1;
  position.paid = money(4.9);
  const double utility = kModel.evaluate(Side::kSeller, money(4), position);
  EXPECT_NEAR(utility, 4.5 - 4.9, 1e-12);
}

TEST(UtilityModelTest, BuyerSellingIsAFailedDelivery) {
  AccountPosition position;
  position.sold = 1;
  position.received = money(100);
  EXPECT_EQ(UtilityModel::failed_deliveries(Side::kBuyer, position), 1u);
  const double utility = kModel.evaluate(Side::kBuyer, money(7), position);
  EXPECT_LT(utility, -1e6);  // penalty dominates any receipt
}

TEST(UtilityModelTest, SellerDoubleSaleIsOneFailedDelivery) {
  AccountPosition position;
  position.sold = 2;
  position.received = money(20);
  EXPECT_EQ(UtilityModel::failed_deliveries(Side::kSeller, position), 1u);
  const double utility = kModel.evaluate(Side::kSeller, money(4), position);
  EXPECT_LT(utility, -1e6);
}

TEST(UtilityModelTest, SellerSingleSaleDeliversFine) {
  AccountPosition position;
  position.sold = 1;
  position.received = money(6);
  EXPECT_EQ(UtilityModel::failed_deliveries(Side::kSeller, position), 0u);
}

TEST(UtilityModelTest, PenaltyIsConfigurable) {
  const UtilityModel lenient{Money::from_units(1)};
  AccountPosition position;
  position.sold = 1;
  position.received = money(10);
  // Buyer with a failed delivery: 10 received - 1 penalty = 9.
  EXPECT_DOUBLE_EQ(lenient.evaluate(Side::kBuyer, money(7), position), 9.0);
  EXPECT_EQ(lenient.penalty(), Money::from_units(1));
}

TEST(UtilityModelTest, BuyerBuyAndFailedSellKeepsUnitValue) {
  // Bought one unit (valued), failed to deliver a fake sale: holdings stay
  // at 1, penalty applies once.
  const UtilityModel lenient{Money::from_units(0)};
  AccountPosition position;
  position.bought = 1;
  position.paid = money(5);
  position.sold = 1;
  position.received = money(6);
  EXPECT_DOUBLE_EQ(lenient.evaluate(Side::kBuyer, money(7), position),
                   7.0 - 5.0 + 6.0);
}

}  // namespace
}  // namespace fnda
