#include "mechanism/manipulation.h"

#include <gtest/gtest.h>

#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

// The shared valuations of paper Examples 1/3.
SingleUnitInstance example1_instance() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(5)};
  return instance;
}

// The shared valuations of paper Examples 2/4.
SingleUnitInstance example2_instance() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(12)};
  return instance;
}

TEST(DeviationEvaluatorTest, TruthfulUtilityMatchesPaperExample1) {
  const PmdProtocol pmd;
  // Seller with value 4 (index 2): trades at p0 = 4.5, utility 0.5.
  const DeviationEvaluator evaluator(pmd, example1_instance(),
                                     {Side::kSeller, 2});
  EXPECT_NEAR(evaluator.truthful_utility(), 0.5, 1e-9);
}

TEST(DeviationEvaluatorTest, EvaluatesExplicitStrategy) {
  const PmdProtocol pmd;
  // The Example 1 attack: seller (value 4) adds a fake buyer bid at 4.8.
  const DeviationEvaluator evaluator(pmd, example1_instance(),
                                     {Side::kSeller, 2});
  Strategy attack;
  attack.declarations = {Declaration{Side::kSeller, money(4)},
                         Declaration{Side::kBuyer, money(4.8)}};
  // Price rises to 4.9: utility 4.9 - 4 = 0.9 > 0.5.
  EXPECT_NEAR(evaluator.evaluate(attack), 0.9, 1e-9);
}

TEST(DeviationEvaluatorTest, AbsenceGivesZero) {
  const PmdProtocol pmd;
  const DeviationEvaluator evaluator(pmd, example1_instance(),
                                     {Side::kSeller, 2});
  EXPECT_NEAR(evaluator.evaluate(Strategy{}), 0.0, 1e-9);
}

TEST(DeviationEvaluatorTest, RejectsBadIndex) {
  const PmdProtocol pmd;
  EXPECT_THROW(DeviationEvaluator(pmd, example1_instance(),
                                  {Side::kBuyer, 99}),
               std::out_of_range);
}

TEST(ManipulationSearchTest, FindsExample1AttackOnPmd) {
  // Section 4, Example 1: under PMD a trading seller profits from a
  // false-name buyer bid.  The exhaustive search must find a deviation at
  // least as good as the paper's handcrafted 4.8 bid.
  const PmdProtocol pmd;
  const DeviationEvaluator evaluator(pmd, example1_instance(),
                                     {Side::kSeller, 2});
  SearchConfig config;
  config.max_declarations = 2;
  const SearchResult result = find_best_deviation(evaluator, config);

  EXPECT_NEAR(result.truthful_utility, 0.5, 1e-9);
  EXPECT_TRUE(result.profitable(1e-9))
      << "best " << result.best_strategy.to_string() << " = "
      << result.best_utility;
  EXPECT_GE(result.best_utility, 0.9 - 1e-9);
  EXPECT_FALSE(result.truncated);
}

TEST(ManipulationSearchTest, FindsExample2AttackOnPmd) {
  // Section 4, Example 2: the excluded seller (value 4) gains a trade by
  // adding a fake *seller* bid at 6; utility goes from 0 to 1.
  const PmdProtocol pmd;
  const DeviationEvaluator evaluator(pmd, example2_instance(),
                                     {Side::kSeller, 2});
  const SearchResult result = find_best_deviation(evaluator, {});

  EXPECT_NEAR(result.truthful_utility, 0.0, 1e-9);
  EXPECT_TRUE(result.profitable(1e-9));
  EXPECT_GE(result.best_utility, 1.0 - 1e-9);
}

TEST(ManipulationSearchTest, PmdTruthfulWithoutFalseNames) {
  // PMD is dominant-strategy IC when strategies are single bids on the
  // account's own side (McAfee 1992).  Restrict the alphabet accordingly
  // by searching only size-1 strategies and verifying no single *own-side*
  // misreport profits.  (A size-1 wrong-side bid is already a false name.)
  const PmdProtocol pmd;
  const SingleUnitInstance instance = example1_instance();
  for (std::size_t index = 0; index < 4; ++index) {
    for (Side role : {Side::kBuyer, Side::kSeller}) {
      const DeviationEvaluator evaluator(pmd, instance, {role, index});
      const double truthful = evaluator.truthful_utility();
      for (Money v :
           candidate_values(instance, evaluator.true_value(), {})) {
        const double deviant = evaluator.evaluate(Strategy::misreport(role, v));
        EXPECT_LE(deviant, truthful + 1e-9)
            << to_string(role) << " index " << index << " misreport "
            << v.to_string();
      }
    }
  }
}

TEST(ManipulationSearchTest, TpdRobustOnExample1Instance) {
  // Example 3: with r = 4.5 no participant gains from any deviation,
  // including false-name bids.
  const TpdProtocol tpd(money(4.5));
  const SingleUnitInstance instance = example1_instance();
  for (std::size_t index = 0; index < 4; ++index) {
    for (Side role : {Side::kBuyer, Side::kSeller}) {
      const DeviationEvaluator evaluator(tpd, instance, {role, index});
      const SearchResult result = find_best_deviation(evaluator, {});
      EXPECT_FALSE(result.profitable(1e-9))
          << to_string(role) << " index " << index << " profits via "
          << result.best_strategy.to_string() << ": "
          << result.truthful_utility << " -> " << result.best_utility;
    }
  }
}

TEST(ManipulationSearchTest, TpdRobustOnExample2InstanceBothThresholds) {
  // Example 4 uses r = 6 and r = 7.5 on the Example 2 valuations.
  const SingleUnitInstance instance = example2_instance();
  for (Money r : {money(6), money(7.5)}) {
    const TpdProtocol tpd(r);
    for (std::size_t index = 0; index < 4; ++index) {
      for (Side role : {Side::kBuyer, Side::kSeller}) {
        const DeviationEvaluator evaluator(tpd, instance, {role, index});
        const SearchResult result = find_best_deviation(evaluator, {});
        EXPECT_FALSE(result.profitable(1e-9))
            << "r=" << r.to_string() << ' ' << to_string(role) << " index "
            << index << " profits via " << result.best_strategy.to_string();
      }
    }
  }
}

TEST(ManipulationSearchTest, CandidateGridCoversInstanceValues) {
  const SingleUnitInstance instance = example1_instance();
  const auto grid = candidate_values(instance, money(7), {money(42)});
  auto contains = [&grid](Money v) {
    return std::find(grid.begin(), grid.end(), v) != grid.end();
  };
  for (Money v : instance.buyer_values) EXPECT_TRUE(contains(v));
  for (Money v : instance.seller_values) EXPECT_TRUE(contains(v));
  EXPECT_TRUE(contains(money(42)));
  EXPECT_TRUE(contains(instance.domain.lowest));
  EXPECT_TRUE(contains(instance.domain.highest));
  // Midpoints between adjacent values, e.g. (4+5)/2.
  EXPECT_TRUE(contains(money(4.5)));
  // Grid is sorted and unique.
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_EQ(std::adjacent_find(grid.begin(), grid.end()), grid.end());
}

TEST(ManipulationSearchTest, TruncationCapRespected) {
  const TpdProtocol tpd(money(4.5));
  const DeviationEvaluator evaluator(tpd, example1_instance(),
                                     {Side::kBuyer, 0});
  SearchConfig config;
  config.max_strategies = 10;
  const SearchResult result = find_best_deviation(evaluator, config);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.strategies_evaluated, 10u);
}

TEST(ManipulationSearchTest, SearchReportsEvaluationCount) {
  const TpdProtocol tpd(money(4.5));
  const DeviationEvaluator evaluator(tpd, example1_instance(),
                                     {Side::kBuyer, 0});
  SearchConfig config;
  config.max_declarations = 1;
  const SearchResult result = find_best_deviation(evaluator, config);
  EXPECT_GT(result.strategies_evaluated, 10u);
  EXPECT_FALSE(result.truncated);
}

}  // namespace
}  // namespace fnda
