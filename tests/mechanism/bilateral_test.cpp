#include "mechanism/bilateral.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fnda {
namespace {

/// The canonical overlapping-support example: b in {1, 3}, s in {0, 2},
/// uniform.  Gains from trade exist for (1,0), (3,0), (3,2) but not (1,2).
BilateralSetting overlapping() {
  BilateralSetting setting;
  setting.buyer_types = {{money(1), 0.5}, {money(3), 0.5}};
  setting.seller_types = {{money(0), 0.5}, {money(2), 0.5}};
  return setting;
}

/// Disjoint supports: the buyer always values the good above the seller.
BilateralSetting disjoint() {
  BilateralSetting setting;
  setting.buyer_types = {{money(5), 0.5}, {money(6), 0.5}};
  setting.seller_types = {{money(1), 0.5}, {money(2), 0.5}};
  return setting;
}

TEST(BilateralTest, MyersonSatterthwaiteImpossibility) {
  // With overlapping supports there is NO efficient, DSIC, ex-post IR,
  // budget-balanced mechanism — the discrete form of the theorem the
  // paper's Section 2 cites, decided by exact linear feasibility.
  const FeasibilityReport report = check_efficient_mechanism_exists(
      overlapping(), MechanismRequirements{/*budget_balanced=*/true});
  EXPECT_FALSE(report.feasible);
  // Budget balance is substituted away: one transfer variable per type
  // pair; 8 IR + 4 buyer-DSIC + 4 seller-DSIC constraints.
  EXPECT_EQ(report.variables, 4u);
  EXPECT_EQ(report.constraints, 16u);
}

TEST(BilateralTest, SubsidyRestoresPossibility) {
  // Dropping budget balance (VCG-style, auctioneer may inject money)
  // makes the efficient DSIC IR mechanism exist.
  MechanismRequirements requirements;
  requirements.budget_balanced = false;
  requirements.no_subsidy = false;
  const FeasibilityReport report =
      check_efficient_mechanism_exists(overlapping(), requirements);
  EXPECT_TRUE(report.feasible);
}

TEST(BilateralTest, NoSubsidyAloneIsStillImpossible) {
  // Requiring only payment >= receipt (the auctioneer never pays) keeps
  // the overlapping case impossible: the deficit is intrinsic.
  MechanismRequirements requirements;
  requirements.budget_balanced = false;
  requirements.no_subsidy = true;
  const FeasibilityReport report =
      check_efficient_mechanism_exists(overlapping(), requirements);
  EXPECT_FALSE(report.feasible);
}

TEST(BilateralTest, DisjointSupportsAreFeasible) {
  // Trade is always efficient; a posted price between the supports is
  // DSIC, IR, budget balanced and efficient.
  const FeasibilityReport report = check_efficient_mechanism_exists(
      disjoint(), MechanismRequirements{/*budget_balanced=*/true});
  EXPECT_TRUE(report.feasible);
}

TEST(BilateralTest, NeverTradeIsTriviallyFeasible) {
  BilateralSetting setting;
  setting.buyer_types = {{money(1), 1.0}};
  setting.seller_types = {{money(9), 1.0}};
  const FeasibilityReport report = check_efficient_mechanism_exists(
      setting, MechanismRequirements{true});
  EXPECT_TRUE(report.feasible);
}

TEST(BilateralTest, ExpectedEfficientSurplus) {
  // (1,0): 1, (3,0): 3, (3,2): 1, each w.p. 0.25 -> 1.25.
  EXPECT_NEAR(expected_efficient_surplus(overlapping()), 1.25, 1e-12);
  // Disjoint: all four pairs trade: (4+3+5+4)/4 = 4.
  EXPECT_NEAR(expected_efficient_surplus(disjoint()), 4.0, 1e-12);
}

TEST(BilateralTest, PostedPriceSurplusByPrice) {
  const BilateralSetting setting = overlapping();
  // p = 0: only seller 0 participates; buyers 1 and 3 both >= 0.
  // Trades: (1,0) and (3,0), each w.p. 0.25 -> 1.0.
  EXPECT_NEAR(expected_posted_price_surplus(setting, money(0)), 1.0, 1e-12);
  // p = 2: buyer 3 only; sellers 0 and 2 -> (3-0)+(3-2) each 0.25 -> 1.0.
  EXPECT_NEAR(expected_posted_price_surplus(setting, money(2)), 1.0, 1e-12);
  // p = 1: buyers {1,3}, sellers {0} -> (1-0)+(3-0) -> 1.0.
  EXPECT_NEAR(expected_posted_price_surplus(setting, money(1)), 1.0, 1e-12);
  // p = 5: no buyer participates.
  EXPECT_NEAR(expected_posted_price_surplus(setting, money(5)), 0.0, 1e-12);
}

TEST(BilateralTest, OptimalPostedPrice) {
  const PostedPriceResult result = optimal_posted_price(overlapping());
  // Every price in {0, 1, 2} yields 1.0 here; ties break low.
  EXPECT_EQ(result.price, money(0));
  EXPECT_NEAR(result.expected_surplus, 1.0, 1e-12);
  EXPECT_NEAR(result.efficiency, 1.0 / 1.25, 1e-12);
}

TEST(BilateralTest, OptimalPostedPriceOnDisjointSupportIsFullyEfficient) {
  const PostedPriceResult result = optimal_posted_price(disjoint());
  EXPECT_NEAR(result.efficiency, 1.0, 1e-12);
  // Price 2 admits both sellers and both buyers.
  EXPECT_EQ(result.price, money(2));
}

TEST(BilateralTest, ValidatesProbabilities) {
  BilateralSetting bad;
  bad.buyer_types = {{money(1), 0.7}};  // sums to 0.7
  bad.seller_types = {{money(0), 1.0}};
  EXPECT_THROW(expected_efficient_surplus(bad), std::invalid_argument);
  BilateralSetting empty;
  empty.seller_types = {{money(0), 1.0}};
  EXPECT_THROW(optimal_posted_price(empty), std::invalid_argument);
}

TEST(BilateralTest, ThreeTypeOverlapStillImpossible) {
  BilateralSetting setting;
  setting.buyer_types = {{money(1), 0.4}, {money(2.5), 0.3}, {money(4), 0.3}};
  setting.seller_types = {{money(0.5), 0.5}, {money(3), 0.5}};
  const FeasibilityReport report = check_efficient_mechanism_exists(
      setting, MechanismRequirements{true});
  EXPECT_FALSE(report.feasible);
}

}  // namespace
}  // namespace fnda
