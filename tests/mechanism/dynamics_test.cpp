#include "mechanism/dynamics.h"

#include <gtest/gtest.h>

#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

SingleUnitInstance example1_instance() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(5)};
  return instance;
}

DynamicsConfig fast_config() {
  DynamicsConfig config;
  config.max_sweeps = 4;
  config.search.max_declarations = 2;
  return config;
}

TEST(DynamicsTest, TpdIsAFixedPointAtTruth) {
  // Dominant-strategy IC => nobody moves; the dynamics converge in one
  // sweep with zero updates and full efficiency is retained.
  const TpdProtocol tpd(money(4.5));
  const DynamicsResult result =
      best_response_dynamics(tpd, example1_instance(), fast_config());
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.sweeps, 1u);
  EXPECT_EQ(result.updates, 0u);
  EXPECT_EQ(result.deviators, 0u);
  EXPECT_DOUBLE_EQ(result.final_surplus, result.truthful_surplus);
}

TEST(DynamicsTest, PmdDriftsUnderFalseNameCapableAgents) {
  // With false-name strategies available, PMD's truthful profile is not
  // an equilibrium (Section 4): somebody updates.
  const PmdProtocol pmd;
  const DynamicsResult result =
      best_response_dynamics(pmd, example1_instance(), fast_config());
  EXPECT_GT(result.updates, 0u);
  EXPECT_GT(result.deviators, 0u);
}

TEST(DynamicsTest, PmdStableWithoutFalseNames) {
  // Restricted to single declarations, PMD is DSIC: truth stays put.
  const PmdProtocol pmd;
  DynamicsConfig config = fast_config();
  config.search.max_declarations = 1;
  config.search.allow_absence = false;

  // Single *wrong-side* declarations are still in the space; they are
  // never strictly profitable (a lone wrong-side bid can only lose money
  // or trigger the penalty), so truth remains a fixed point.
  const DynamicsResult result =
      best_response_dynamics(pmd, example1_instance(), config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.updates, 0u);
}

TEST(DynamicsTest, KdaShadingEquilibriumLosesSurplus) {
  // kDA agents shade; the resulting profile typically destroys trades.
  const KDoubleAuction kda(0.5);
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(7)};
  instance.seller_values = {money(2), money(3)};
  DynamicsConfig config = fast_config();
  config.search.max_declarations = 1;  // classic misreport game
  config.search.allow_absence = false;
  const DynamicsResult result =
      best_response_dynamics(kda, instance, config);
  EXPECT_GT(result.updates, 0u);
  // Truthful surplus is fully efficient: (9-2) + (7-3) = 11.
  EXPECT_DOUBLE_EQ(result.truthful_surplus, 11.0);
  EXPECT_LE(result.final_surplus, result.truthful_surplus);
}

TEST(DynamicsTest, ReportsPerAgentStateCoherently) {
  const TpdProtocol tpd(money(4.5));
  const SingleUnitInstance instance = example1_instance();
  const DynamicsResult result =
      best_response_dynamics(tpd, instance, fast_config());
  ASSERT_EQ(result.agents.size(), 8u);
  // Buyers come first, in instance order, then sellers.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.agents[i].role, Side::kBuyer);
    EXPECT_EQ(result.agents[i].true_value, instance.buyer_values[i]);
    EXPECT_EQ(result.agents[i + 4].role, Side::kSeller);
  }
  // Utilities at a truthful TPD fixed point are the Example 3 utilities.
  EXPECT_NEAR(result.agents[0].utility, 9.0 - 4.5, 1e-9);   // buyer 9
  EXPECT_NEAR(result.agents[3].utility, 0.0, 1e-9);         // buyer 4
  EXPECT_NEAR(result.agents[4].utility, 4.5 - 2.0, 1e-9);   // seller 2
  EXPECT_NEAR(result.agents[7].utility, 0.0, 1e-9);         // seller 5
}

TEST(DynamicsTest, DeterministicGivenSeed) {
  const PmdProtocol pmd;
  DynamicsConfig config = fast_config();
  config.seed = 321;
  const DynamicsResult a =
      best_response_dynamics(pmd, example1_instance(), config);
  const DynamicsResult b =
      best_response_dynamics(pmd, example1_instance(), config);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_DOUBLE_EQ(a.final_surplus, b.final_surplus);
}

}  // namespace
}  // namespace fnda
