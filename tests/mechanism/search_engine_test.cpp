// Equivalence and soundness of the parallel pruned search engine.
//
// The engine's contract is exact: for every protocol, instance, and
// thread count it must return the same best strategy, the same utilities
// bit-for-bit, and the same considered-candidate count as the serial
// reference (`find_best_deviation_serial`).  These tests drive that
// contract across all seven protocols, tie-heavy all-equal-value books,
// thread counts 1/2/8, pruning on/off, and an exhaustive small grid.
#include "mechanism/manipulation.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mechanism/multi_manipulation.h"
#include "protocols/efficient.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "protocols/tpd_multi.h"
#include "protocols/tpd_rebate.h"
#include "protocols/vcg.h"

namespace fnda {
namespace {

/// All seven single-unit protocols under test.  Static storage: the
/// evaluator keeps a reference.
const std::vector<const DoubleAuctionProtocol*>& all_protocols() {
  static const TpdProtocol tpd(money(50));
  static const PmdProtocol pmd;
  static const KDoubleAuction kda(0.5);
  static const EfficientClearing efficient;
  static const VcgDoubleAuction vcg;
  static const RandomThresholdProtocol lottery(money(50));
  static const TpdWithRebates rebates(money(50));
  static const std::vector<const DoubleAuctionProtocol*> protocols = {
      &tpd, &pmd, &kda, &efficient, &vcg, &lottery, &rebates};
  return protocols;
}

SingleUnitInstance random_instance(std::uint64_t seed, std::size_t buyers,
                                   std::size_t sellers) {
  SingleUnitInstance instance;
  Rng rng(seed);
  for (std::size_t b = 0; b < buyers; ++b) {
    instance.buyer_values.push_back(
        Money::from_micros(static_cast<std::int64_t>(rng.below(100'000'001))));
  }
  for (std::size_t s = 0; s < sellers; ++s) {
    instance.seller_values.push_back(
        Money::from_micros(static_cast<std::int64_t>(rng.below(100'000'001))));
  }
  return instance;
}

/// Every value identical: the random-tie insertion machinery carries the
/// whole outcome, so any divergence in the engine's rng replay shows.
SingleUnitInstance all_equal_instance(std::size_t per_side) {
  SingleUnitInstance instance;
  for (std::size_t i = 0; i < per_side; ++i) {
    instance.buyer_values.push_back(money(50));
    instance.seller_values.push_back(money(50));
  }
  return instance;
}

void expect_equivalent(const SearchResult& engine, const SearchResult& serial,
                       const std::string& context) {
  // Bit-for-bit, not approximately: both paths must take identical
  // arithmetic per candidate.
  EXPECT_EQ(engine.truthful_utility, serial.truthful_utility) << context;
  EXPECT_EQ(engine.best_utility, serial.best_utility) << context;
  EXPECT_EQ(engine.best_strategy.to_string(),
            serial.best_strategy.to_string())
      << context;
  EXPECT_EQ(engine.strategies_evaluated, serial.strategies_evaluated)
      << context;
  EXPECT_EQ(engine.truncated, serial.truncated) << context;
}

TEST(SearchEngineTest, MatchesSerialOracleOnAllProtocolsAndThreadCounts) {
  for (const DoubleAuctionProtocol* protocol : all_protocols()) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const SingleUnitInstance instance = random_instance(seed, 5, 5);
      for (const Side role : {Side::kBuyer, Side::kSeller}) {
        const DeviationEvaluator evaluator(*protocol, instance, {role, 1});
        SearchConfig config;
        const SearchResult serial =
            find_best_deviation_serial(evaluator, config);
        for (const std::size_t threads : {1u, 2u, 8u}) {
          config.threads = threads;
          const SearchResult engine = find_best_deviation(evaluator, config);
          expect_equivalent(
              engine, serial,
              protocol->name() + " seed=" + std::to_string(seed) +
                  " role=" + std::to_string(static_cast<int>(role)) +
                  " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

TEST(SearchEngineTest, MatchesSerialOracleOnTieHeavyBooks) {
  // All-equal values exercise the footnote-5 random-rank insertion on
  // every declaration; replicates > 1 exercise the per-replicate streams.
  const SingleUnitInstance instance = all_equal_instance(4);
  EvalConfig eval;
  eval.replicates = 8;
  for (const DoubleAuctionProtocol* protocol : all_protocols()) {
    const DeviationEvaluator evaluator(*protocol, instance,
                                       {Side::kSeller, 2}, eval);
    SearchConfig config;
    const SearchResult serial = find_best_deviation_serial(evaluator, config);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      config.threads = threads;
      const SearchResult engine = find_best_deviation(evaluator, config);
      expect_equivalent(engine, serial,
                        protocol->name() + " tie-heavy threads=" +
                            std::to_string(threads));
    }
  }
}

TEST(SearchEngineTest, PruningIsSoundOnExhaustiveSmallGrid) {
  // Same engine with pruning on vs off over an exhaustive grid: the bound
  // may only skip candidates that cannot win, so the results must agree
  // exactly and everything pruned must be accounted for.
  SearchConfig config;
  config.grid_override = {money(10), money(30), money(50), money(70),
                          money(90)};
  for (const DoubleAuctionProtocol* protocol : all_protocols()) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      const SingleUnitInstance instance = random_instance(seed, 4, 4);
      const DeviationEvaluator evaluator(*protocol, instance,
                                         {Side::kBuyer, 0});
      config.prune = true;
      const SearchResult pruned = find_best_deviation(evaluator, config);
      config.prune = false;
      const SearchResult unpruned = find_best_deviation(evaluator, config);
      expect_equivalent(pruned, unpruned,
                        protocol->name() + " seed=" + std::to_string(seed));
      EXPECT_EQ(unpruned.stats.pruned_by_bound, 0u);
      EXPECT_EQ(unpruned.stats.pruned_in_subtree, 0u);
      EXPECT_EQ(pruned.stats.strategies_evaluated +
                    pruned.stats.pruned_by_bound +
                    pruned.stats.pruned_in_subtree,
                pruned.stats.strategies_enumerated);
    }
  }
}

TEST(SearchEngineTest, StatsAreThreadInvariant) {
  const SingleUnitInstance instance = random_instance(7, 6, 6);
  static const TpdWithRebates rebates(money(50));
  const DeviationEvaluator evaluator(rebates, instance, {Side::kBuyer, 2});
  SearchConfig config;
  config.threads = 1;
  const SearchResult one = find_best_deviation(evaluator, config);
  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const SearchResult many = find_best_deviation(evaluator, config);
    EXPECT_EQ(many.stats.strategies_enumerated,
              one.stats.strategies_enumerated);
    EXPECT_EQ(many.stats.strategies_evaluated,
              one.stats.strategies_evaluated);
    EXPECT_EQ(many.stats.pruned_by_bound, one.stats.pruned_by_bound);
    EXPECT_EQ(many.stats.pruned_in_subtree, one.stats.pruned_in_subtree);
    EXPECT_EQ(many.stats.dedup_skipped, one.stats.dedup_skipped);
    EXPECT_EQ(many.stats.clears_performed, one.stats.clears_performed);
    EXPECT_EQ(many.stats.fast_positions, one.stats.fast_positions);
    EXPECT_EQ(many.stats.bound_slack_micros, one.stats.bound_slack_micros);
    EXPECT_EQ(many.stats.bound_slack_samples, one.stats.bound_slack_samples);
  }
}

TEST(SearchEngineTest, GridOverrideFixesTheCandidateSpace) {
  const SingleUnitInstance instance = random_instance(21, 5, 5);
  static const PmdProtocol pmd;
  const DeviationEvaluator evaluator(pmd, instance, {Side::kSeller, 0});
  SearchConfig config;
  config.grid_override = {money(25), money(75)};
  const SearchResult engine = find_best_deviation(evaluator, config);
  const SearchResult serial = find_best_deviation_serial(evaluator, config);
  expect_equivalent(engine, serial, "grid override");
  // 2 values x 2 sides = 4 symbols; absence + multisets of size <= 2:
  // 1 + 4 + C(5,2) = 15.
  EXPECT_EQ(engine.strategies_evaluated, 15u);
}

TEST(SearchEngineTest, MultiUnitEngineMatchesSerialShim) {
  static const TpdMultiUnitProtocol protocol(money(50));
  MultiUnitInstance instance;
  instance.buyer_schedules = {{money(80), money(60)}, {money(70), money(40)}};
  instance.seller_schedules = {{money(30), money(20)}, {money(45), money(35)}};
  const MultiDeviationEvaluator evaluator(protocol, instance,
                                          {Side::kBuyer, 0});
  const MultiSearchResult serial =
      find_best_multi_deviation(evaluator, MultiSearchConfig{});
  for (const std::size_t threads : {2u, 8u, 0u}) {
    MultiSearchConfig config;
    config.threads = threads;
    const MultiSearchResult parallel =
        find_best_multi_deviation(evaluator, config);
    EXPECT_EQ(parallel.truthful_utility, serial.truthful_utility);
    EXPECT_EQ(parallel.best_utility, serial.best_utility);
    EXPECT_EQ(parallel.best_strategy.declarations.size(),
              serial.best_strategy.declarations.size());
    EXPECT_EQ(parallel.strategies_evaluated, serial.strategies_evaluated);
  }
  // The legacy vector-of-factors overload is the same single-threaded
  // search.
  const MultiSearchResult legacy = find_best_multi_deviation(
      evaluator, MultiSearchConfig{}.shade_factors);
  EXPECT_EQ(legacy.best_utility, serial.best_utility);
}

TEST(SearchEngineTest, AccountPositionMatchesFullClearEverywhere) {
  // The fast path must attribute exactly what clear_sorted attributes.
  // Cross-check by running the engine with pruning disabled (every
  // candidate priced, mostly via account_position) against the serial
  // path (every candidate priced via full clears) — already covered by
  // the oracle tests above, so here hammer larger books where rank
  // arithmetic has more edge cases.
  for (const DoubleAuctionProtocol* protocol : all_protocols()) {
    const SingleUnitInstance instance = random_instance(31, 9, 7);
    const DeviationEvaluator evaluator(*protocol, instance,
                                       {Side::kBuyer, 4});
    SearchConfig config;
    config.prune = false;
    config.grid_override = {money(15), money(45), money(55), money(85)};
    config.threads = 2;
    const SearchResult engine = find_best_deviation(evaluator, config);
    const SearchResult serial = find_best_deviation_serial(evaluator, config);
    expect_equivalent(engine, serial, protocol->name() + " 9x7");
  }
}

}  // namespace
}  // namespace fnda
