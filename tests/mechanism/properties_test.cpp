// Empirical incentive-compatibility sweeps: the testable form of the
// paper's Theorem 1 and Section 4 counterexamples.
#include "mechanism/properties.h"

#include <gtest/gtest.h>

#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace fnda {
namespace {

IcCheckConfig small_sweep(std::uint64_t seed) {
  IcCheckConfig config;
  config.instances = 30;
  config.manipulators_per_instance = 2;
  config.instance_spec.max_buyers = 5;
  config.instance_spec.max_sellers = 5;
  config.seed = seed;
  return config;
}

TEST(IcSweepTest, TpdHasNoProfitableDeviationWithFalseNames) {
  // Theorem 1: truth-telling under a single identity dominates, even with
  // false-name bids in the strategy space (max_declarations = 2).
  const TpdProtocol tpd(money(50));
  IcCheckConfig config = small_sweep(0x7bd);
  config.search.max_declarations = 2;
  const IcCheckReport report = check_incentive_compatibility(tpd, config);
  EXPECT_TRUE(report.clean()) << report.violations.size()
                              << " violations; first strategy: "
                              << report.violations.front().strategy.to_string();
  EXPECT_EQ(report.instances_checked, 30u);
  EXPECT_GT(report.strategies_evaluated, 1000u);
}

TEST(IcSweepTest, TpdRobustAtOffCenterThresholds) {
  for (Money r : {money(20), money(80)}) {
    const TpdProtocol tpd(r);
    IcCheckConfig config = small_sweep(0x99 + r.micros());
    config.instances = 15;
    config.search.max_declarations = 2;
    const IcCheckReport report = check_incentive_compatibility(tpd, config);
    EXPECT_TRUE(report.clean()) << "threshold " << r.to_string();
  }
}

TEST(IcSweepTest, PmdCleanWithoutFalseNames) {
  // Single own-side declarations only: McAfee's dominant-strategy result.
  const PmdProtocol pmd;
  IcCheckConfig config = small_sweep(0xadd);
  config.search.max_declarations = 1;
  config.search.allow_absence = true;

  // A single declaration on the *other* side is itself a false-name action
  // (the account pretends to be a different kind of participant), and PMD
  // is only IC without such actions.  Filter violations accordingly: a
  // clean PMD run means no *own-side* misreport (or absence) profits.
  const IcCheckReport report = check_incentive_compatibility(pmd, config);
  for (const IcViolation& violation : report.violations) {
    ASSERT_EQ(violation.strategy.declarations.size(), 1u);
    EXPECT_NE(violation.strategy.declarations[0].side, violation.manipulator.role)
        << "own-side misreport beat truth under PMD: "
        << violation.strategy.to_string();
  }
}

TEST(IcSweepTest, PmdVulnerableWithFalseNames) {
  // Section 4: once two declarations are allowed, profitable deviations
  // exist.  With 30 random instances the sweep reliably finds some.
  const PmdProtocol pmd;
  IcCheckConfig config = small_sweep(0xbad);
  config.search.max_declarations = 2;
  const IcCheckReport report = check_incentive_compatibility(pmd, config);
  EXPECT_FALSE(report.clean())
      << "expected PMD false-name violations on random instances";
  // Every reported violation must be a genuine improvement.
  for (const IcViolation& violation : report.violations) {
    EXPECT_GT(violation.deviant_utility,
              violation.truthful_utility + config.epsilon);
  }
}

TEST(IcSweepTest, ViolationCapStopsEarly) {
  const PmdProtocol pmd;
  IcCheckConfig config = small_sweep(0xbad);
  config.search.max_declarations = 2;
  config.max_violations = 1;
  const IcCheckReport report = check_incentive_compatibility(pmd, config);
  EXPECT_EQ(report.violations.size(), 1u);
}

TEST(RandomInstanceTest, RespectsSpecBounds) {
  InstanceSpec spec;
  spec.min_buyers = 2;
  spec.max_buyers = 4;
  spec.min_sellers = 1;
  spec.max_sellers = 3;
  spec.low = money(10);
  spec.high = money(20);
  Rng rng(5);
  for (int run = 0; run < 200; ++run) {
    const SingleUnitInstance instance = random_instance(spec, rng);
    EXPECT_GE(instance.buyer_values.size(), 2u);
    EXPECT_LE(instance.buyer_values.size(), 4u);
    EXPECT_GE(instance.seller_values.size(), 1u);
    EXPECT_LE(instance.seller_values.size(), 3u);
    for (Money v : instance.buyer_values) {
      EXPECT_GE(v, money(10));
      EXPECT_LE(v, money(20));
    }
  }
}

}  // namespace
}  // namespace fnda
