#include "mechanism/multi_manipulation.h"

#include <gtest/gtest.h>

namespace fnda {
namespace {

// Example 5's population as the true state of the world.
MultiUnitInstance example5_instance() {
  MultiUnitInstance instance;
  instance.buyer_schedules = {{money(9), money(8)}, {money(7)}, {money(6)},
                              {money(4)}};
  instance.seller_schedules = {{money(2)}, {money(3)}, {money(4)},
                               {money(5)}, {money(7)}};
  return instance;
}

TEST(MultiDeviationTest, TruthfulUtilityMatchesExample5) {
  const TpdMultiUnitProtocol protocol(money(4.5));
  // Buyer x {9, 8} wins 2 units for 10.5: utility 9 + 8 - 10.5 = 6.5.
  const MultiDeviationEvaluator evaluator(protocol, example5_instance(),
                                          {Side::kBuyer, 0});
  EXPECT_NEAR(evaluator.truthful_utility(), 6.5, 1e-9);
}

TEST(MultiDeviationTest, SplittingTheScheduleDoesNotHelpBuyerX) {
  // Section 9's central claim, on the paper's own example: splitting
  // {9, 8} across two pseudonyms (or shading) never beats truth.
  const TpdMultiUnitProtocol protocol(money(4.5));
  const MultiDeviationEvaluator evaluator(protocol, example5_instance(),
                                          {Side::kBuyer, 0});
  const MultiSearchResult result = find_best_multi_deviation(evaluator);
  EXPECT_FALSE(result.profitable(1e-9))
      << "split/shade beat truth: " << result.best_utility << " vs "
      << result.truthful_utility;
  EXPECT_GT(result.strategies_evaluated, 20u);
}

TEST(MultiDeviationTest, ExplicitSplitCostsExactlyTheBundleDiscount) {
  // Splitting {9, 8} into {9} + {8}: each pseudonym pays GVA prices
  // computed against the *other* pseudonym's bid as competition, which
  // can only raise the total (10.5 -> 6 + 6 = 12 here).
  const TpdMultiUnitProtocol protocol(money(4.5));
  const MultiDeviationEvaluator evaluator(protocol, example5_instance(),
                                          {Side::kBuyer, 0});
  MultiStrategy split;
  split.declarations = {MultiDeclaration{Side::kBuyer, {money(9)}},
                        MultiDeclaration{Side::kBuyer, {money(8)}}};
  const double split_utility = evaluator.evaluate(split);
  EXPECT_NEAR(split_utility, 9.0 + 8.0 - 12.0, 1e-9);
  EXPECT_LT(split_utility, evaluator.truthful_utility());
}

TEST(MultiDeviationTest, WithholdingAUnitDoesNotHelp) {
  const TpdMultiUnitProtocol protocol(money(4.5));
  const MultiDeviationEvaluator evaluator(protocol, example5_instance(),
                                          {Side::kBuyer, 0});
  MultiStrategy withhold;
  withhold.declarations = {MultiDeclaration{Side::kBuyer, {money(9)}}};
  EXPECT_LE(evaluator.evaluate(withhold), evaluator.truthful_utility() + 1e-9);
  EXPECT_NEAR(evaluator.evaluate(MultiStrategy{}), 0.0, 1e-9);
}

TEST(MultiDeviationTest, SellerSplittingDoesNotHelp) {
  MultiUnitInstance instance;
  instance.buyer_schedules = {{money(9)}, {money(8)}, {money(6)}};
  instance.seller_schedules = {{money(7), money(5), money(2)}, {money(3)}};
  const TpdMultiUnitProtocol protocol(money(5.5));
  const MultiDeviationEvaluator evaluator(protocol, instance,
                                          {Side::kSeller, 0});
  const MultiSearchResult result = find_best_multi_deviation(evaluator);
  EXPECT_FALSE(result.profitable(1e-9))
      << "seller split beat truth: " << result.best_utility << " vs "
      << result.truthful_utility;
}

TEST(MultiDeviationTest, RandomInstancesRobust) {
  // Randomized Section 9 sweep: decreasing-marginal schedules, every
  // participant probed with the split/shade search.
  const TpdMultiUnitProtocol protocol(money(50));
  Rng rng(0x5ec9);
  for (int run = 0; run < 25; ++run) {
    MultiUnitInstance instance;
    auto draw_schedule = [&rng] {
      std::vector<Money> values;
      const std::size_t units = 1 + rng.below(3);
      for (std::size_t u = 0; u < units; ++u) {
        values.push_back(
            rng.uniform_money(Money::from_units(0), Money::from_units(100)));
      }
      std::sort(values.begin(), values.end(),
                [](Money a, Money b) { return a > b; });
      return values;
    };
    const std::size_t buyers = 2 + rng.below(3);
    const std::size_t sellers = 2 + rng.below(3);
    for (std::size_t b = 0; b < buyers; ++b) {
      instance.buyer_schedules.push_back(draw_schedule());
    }
    for (std::size_t s = 0; s < sellers; ++s) {
      instance.seller_schedules.push_back(draw_schedule());
    }

    for (Side role : {Side::kBuyer, Side::kSeller}) {
      const std::size_t count = role == Side::kBuyer ? buyers : sellers;
      for (std::size_t index = 0; index < count; ++index) {
        const MultiDeviationEvaluator evaluator(protocol, instance,
                                                {role, index},
                                                UtilityModel{}, rng());
        const MultiSearchResult result =
            find_best_multi_deviation(evaluator);
        EXPECT_FALSE(result.profitable(1e-6))
            << "run " << run << ' ' << to_string(role) << ' ' << index
            << ": " << result.truthful_utility << " -> "
            << result.best_utility;
      }
    }
  }
}

TEST(MultiDeviationTest, RejectsBadIndex) {
  const TpdMultiUnitProtocol protocol(money(50));
  EXPECT_THROW(MultiDeviationEvaluator(protocol, example5_instance(),
                                       {Side::kBuyer, 99}),
               std::out_of_range);
}

}  // namespace
}  // namespace fnda
