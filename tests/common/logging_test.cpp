#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fnda {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = log_level();
    set_log_sink(&sink_);
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(saved_level_);
  }

  std::ostringstream sink_;
  LogLevel saved_level_;
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  set_log_level(LogLevel::kInfo);
  FNDA_LOG(kInfo) << "hello " << 42;
  EXPECT_EQ(sink_.str(), "[INFO] hello 42\n");
}

TEST_F(LoggingTest, SuppressesBelowLevel) {
  set_log_level(LogLevel::kWarn);
  FNDA_LOG(kDebug) << "invisible";
  FNDA_LOG(kInfo) << "also invisible";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, ErrorAlwaysVisibleBelowOff) {
  set_log_level(LogLevel::kError);
  FNDA_LOG(kError) << "boom";
  EXPECT_EQ(sink_.str(), "[ERROR] boom\n");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  FNDA_LOG(kError) << "nope";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, SuppressedLineDoesNotEvaluateArguments) {
  set_log_level(LogLevel::kWarn);
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return "costly";
  };
  FNDA_LOG(kDebug) << expensive();
  EXPECT_EQ(calls, 0);
  FNDA_LOG(kWarn) << expensive();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sink_.str(), "[WARN] costly\n");
}

TEST_F(LoggingTest, LogEnabledMatchesThreshold) {
  set_log_level(LogLevel::kInfo);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, MacroIsSafeInUnbracedIfElse) {
  set_log_level(LogLevel::kInfo);
  // The else must bind to the outer if, not get captured by the macro's
  // internals — the classic hazard of `if (...) {} else`-style log macros.
  bool took_else = false;
  if (false)
    FNDA_LOG(kInfo) << "untaken";
  else
    took_else = true;
  EXPECT_TRUE(took_else);
  EXPECT_TRUE(sink_.str().empty());
}

}  // namespace
}  // namespace fnda
