#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fnda {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sem(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
  EXPECT_DOUBLE_EQ(stats.sum(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SemShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.sem(), large.sem());
  EXPECT_NEAR(large.ci95_half_width(), 1.96 * large.sem(), 1e-15);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats sequential;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 3.0;
    sequential.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);

  RunningStats target;
  target.merge(stats);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 4.0);
}

TEST(HistogramTest, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  // Interpolated quartile: position 0.25 * 4 = 1.0 exactly -> 2.0.
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenPoints) {
  std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.75), 7.5);
}

TEST(QuantileTest, ThrowsOnEmpty) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace fnda
