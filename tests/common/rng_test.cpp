#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace fnda {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 60'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(6)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    // Expected 10000 per residue; 4 sigma ~ +/- 365.
    EXPECT_NEAR(count, kDraws / 6, 500) << "residue " << value;
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto x = rng.uniform_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01MeanAndRange) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(RngTest, UniformMoneyRespectsBounds) {
  Rng rng(9);
  const Money lo = Money::from_units(10);
  const Money hi = Money::from_units(20);
  for (int i = 0; i < 10'000; ++i) {
    const Money m = rng.uniform_money(lo, hi);
    EXPECT_GE(m, lo);
    EXPECT_LE(m, hi);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BinomialMeanMatchesNp) {
  Rng rng(17);
  constexpr int kDraws = 20'000;
  long total = 0;
  for (int i = 0; i < kDraws; ++i) total += rng.binomial(10, 0.5);
  // mean 5, sd of the mean ~ sqrt(2.5 / 20000) ~ 0.011.
  EXPECT_NEAR(static_cast<double>(total) / kDraws, 5.0, 0.06);
}

TEST(RngTest, BinomialBounds) {
  Rng rng(19);
  for (int i = 0; i < 1'000; ++i) {
    const int x = rng.binomial(8, 0.3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 8);
  }
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleUniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should appear with ~equal frequency.
  std::map<std::vector<int>, int> counts;
  Rng rng(29);
  constexpr int kDraws = 60'000;
  for (int i = 0; i < kDraws; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.shuffle(v.begin(), v.end());
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(count, kDraws / 6, 500);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's next outputs.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace fnda
