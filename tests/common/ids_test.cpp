#include "common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

namespace fnda {
namespace {

TEST(TypedIdTest, DefaultIsInvalid) {
  AccountId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, AccountId::invalid());
}

TEST(TypedIdTest, ConstructedIsValid) {
  const IdentityId id{7};
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(TypedIdTest, Ordering) {
  EXPECT_LT(BidId{1}, BidId{2});
  EXPECT_EQ(BidId{3}, BidId{3});
  EXPECT_NE(BidId{3}, BidId{4});
}

TEST(TypedIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<AccountId, IdentityId>);
  static_assert(!std::is_convertible_v<AccountId, IdentityId>);
}

TEST(TypedIdTest, StreamsWithPrefix) {
  std::ostringstream os;
  os << AccountId{5} << ' ' << IdentityId{9} << ' ' << RoundId{0};
  EXPECT_EQ(os.str(), "acct-5 id-9 round-0");
}

TEST(TypedIdTest, Hashable) {
  std::unordered_set<IdentityId> set{IdentityId{1}, IdentityId{2},
                                     IdentityId{1}};
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace fnda
