#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "common/statistics.h"

namespace fnda {
namespace {

TEST(BootstrapTest, IntervalBracketsSampleMean) {
  std::vector<double> sample;
  Rng data_rng(1);
  for (int i = 0; i < 200; ++i) sample.push_back(data_rng.uniform_double(0, 10));
  double mean = 0.0;
  for (double x : sample) mean += x;
  mean /= static_cast<double>(sample.size());

  Rng rng(2);
  const BootstrapInterval ci = bootstrap_mean_ci(sample, 0.95, 2000, rng);
  EXPECT_LE(ci.lo, mean);
  EXPECT_GE(ci.hi, mean);
  EXPECT_GT(ci.half_width(), 0.0);
}

TEST(BootstrapTest, WidthShrinksWithSampleSize) {
  Rng data_rng(3);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 2000; ++i) {
    const double x = data_rng.uniform_double(0, 1);
    if (i < 50) small.push_back(x);
    large.push_back(x);
  }
  Rng rng(4);
  const BootstrapInterval narrow = bootstrap_mean_ci(large, 0.95, 1000, rng);
  const BootstrapInterval wide = bootstrap_mean_ci(small, 0.95, 1000, rng);
  EXPECT_LT(narrow.half_width(), wide.half_width());
}

TEST(BootstrapTest, HigherConfidenceWiderInterval) {
  Rng data_rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(data_rng.uniform_double(0, 1));
  Rng rng_a(6);
  Rng rng_b(6);
  const BootstrapInterval c90 = bootstrap_mean_ci(sample, 0.90, 1500, rng_a);
  const BootstrapInterval c99 = bootstrap_mean_ci(sample, 0.99, 1500, rng_b);
  EXPECT_LT(c90.half_width(), c99.half_width());
}

TEST(BootstrapTest, DegenerateSampleHasZeroWidth) {
  std::vector<double> constant(40, 7.25);
  Rng rng(7);
  const BootstrapInterval ci = bootstrap_mean_ci(constant, 0.95, 500, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 7.25);
  EXPECT_DOUBLE_EQ(ci.hi, 7.25);
}

TEST(BootstrapTest, CoverageNearNominal) {
  // Repeated experiments: the 90% interval should contain the true mean
  // (0.5 for U[0,1]) in roughly 90% of draws.
  Rng rng(8);
  int covered = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> sample;
    for (int i = 0; i < 60; ++i) sample.push_back(rng.uniform01());
    Rng boot = rng.split();
    const BootstrapInterval ci = bootstrap_mean_ci(sample, 0.90, 400, boot);
    if (ci.lo <= 0.5 && 0.5 <= ci.hi) ++covered;
  }
  EXPECT_GT(covered, kTrials * 80 / 100);
  EXPECT_LT(covered, kTrials * 99 / 100);
}

TEST(BootstrapTest, RejectsBadInputs) {
  Rng rng(9);
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, 100, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.0, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.0, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.95, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace fnda
