#include "common/money.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <unordered_set>

namespace fnda {
namespace {

TEST(MoneyTest, DefaultIsZero) {
  EXPECT_EQ(Money{}.micros(), 0);
  EXPECT_EQ(Money{}, Money::from_units(0));
}

TEST(MoneyTest, FactoriesAgree) {
  EXPECT_EQ(Money::from_units(3), Money::from_micros(3'000'000));
  EXPECT_EQ(Money::from_double(3.0), Money::from_units(3));
  EXPECT_EQ(Money::from_double(4.5), Money::from_micros(4'500'000));
  EXPECT_EQ(money(4.8), Money::from_micros(4'800'000));
}

TEST(MoneyTest, FromDoubleRoundsToNearestMicro) {
  EXPECT_EQ(Money::from_double(0.0000014), Money::from_micros(1));
  EXPECT_EQ(Money::from_double(0.0000016), Money::from_micros(2));
  EXPECT_EQ(Money::from_double(-0.0000014), Money::from_micros(-1));
}

TEST(MoneyTest, Arithmetic) {
  const Money a = money(4.5);
  const Money b = money(2.25);
  EXPECT_EQ(a + b, money(6.75));
  EXPECT_EQ(a - b, money(2.25));
  EXPECT_EQ(-b, money(-2.25));
  EXPECT_EQ(a * 3, money(13.5));
  EXPECT_EQ(3 * a, money(13.5));

  Money c = a;
  c += b;
  EXPECT_EQ(c, money(6.75));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(MoneyTest, Ordering) {
  EXPECT_LT(money(4.5), money(4.8));
  EXPECT_GT(money(5), money(4.999999));
  EXPECT_LE(money(5), money(5));
  EXPECT_EQ(Money::min_value() < Money::max_value(), true);
}

TEST(MoneyTest, MidpointMatchesPaperArithmetic) {
  // Example 1: p0 = (4 + 5) / 2 = 4.5.
  EXPECT_EQ(Money::midpoint(money(4), money(5)), money(4.5));
  // Example 1 after the false-name bid: (4.8 + 5) / 2 = 4.9.
  EXPECT_EQ(Money::midpoint(money(4.8), money(5)), money(4.9));
  // Example 2 after the false-name bid: (4 + 6) / 2 = 5.
  EXPECT_EQ(Money::midpoint(money(4), money(6)), money(5));
  EXPECT_EQ(Money::midpoint(money(7), money(7)), money(7));
}

TEST(MoneyTest, MidpointFloorsOddMicros) {
  EXPECT_EQ(Money::midpoint(Money::from_micros(1), Money::from_micros(2)),
            Money::from_micros(1));
  EXPECT_EQ(Money::midpoint(Money::from_micros(-1), Money::from_micros(-2)),
            Money::from_micros(-2));
  EXPECT_EQ(Money::midpoint(Money::from_micros(-1), Money::from_micros(2)),
            Money::from_micros(0));
  EXPECT_EQ(Money::midpoint(Money::from_micros(-3), Money::from_micros(2)),
            Money::from_micros(-1));
}

TEST(MoneyTest, MidpointDoesNotOverflowAtExtremes) {
  const Money lo = Money::min_value();
  const Money hi = Money::max_value();
  EXPECT_EQ(Money::midpoint(lo, hi), Money::from_micros(-1));
  EXPECT_EQ(Money::midpoint(hi, hi), hi);
  EXPECT_EQ(Money::midpoint(lo, lo), lo);
}

TEST(MoneyTest, ToStringTrimsTrailingZeros) {
  EXPECT_EQ(money(4.5).to_string(), "4.5");
  EXPECT_EQ(money(4).to_string(), "4");
  EXPECT_EQ(money(0.25).to_string(), "0.25");
  EXPECT_EQ(Money::from_micros(1).to_string(), "0.000001");
  EXPECT_EQ(money(-4.5).to_string(), "-4.5");
  EXPECT_EQ(Money::from_micros(-500'000).to_string(), "-0.5");
}

TEST(MoneyTest, StreamOutput) {
  std::ostringstream os;
  os << money(12.75);
  EXPECT_EQ(os.str(), "12.75");
}

TEST(MoneyTest, Hashable) {
  std::unordered_set<Money> set{money(1), money(2), money(1)};
  EXPECT_EQ(set.size(), 2u);
}

TEST(MoneyTest, ToDoubleRoundTrip) {
  EXPECT_DOUBLE_EQ(money(4.5).to_double(), 4.5);
  EXPECT_DOUBLE_EQ(money(0).to_double(), 0.0);
  EXPECT_DOUBLE_EQ(Money::from_units(100).to_double(), 100.0);
}

}  // namespace
}  // namespace fnda
