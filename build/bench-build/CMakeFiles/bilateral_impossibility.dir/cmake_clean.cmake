file(REMOVE_RECURSE
  "../bench/bilateral_impossibility"
  "../bench/bilateral_impossibility.pdb"
  "CMakeFiles/bilateral_impossibility.dir/bilateral_impossibility.cpp.o"
  "CMakeFiles/bilateral_impossibility.dir/bilateral_impossibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bilateral_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
