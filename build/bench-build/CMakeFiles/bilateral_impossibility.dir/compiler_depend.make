# Empty compiler generated dependencies file for bilateral_impossibility.
# This may be replaced when dependencies are built.
