file(REMOVE_RECURSE
  "../bench/table2_binomial"
  "../bench/table2_binomial.pdb"
  "CMakeFiles/table2_binomial.dir/table2_binomial.cpp.o"
  "CMakeFiles/table2_binomial.dir/table2_binomial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
