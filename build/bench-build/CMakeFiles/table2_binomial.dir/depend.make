# Empty dependencies file for table2_binomial.
# This may be replaced when dependencies are built.
