file(REMOVE_RECURSE
  "../bench/figure1_threshold_sweep"
  "../bench/figure1_threshold_sweep.pdb"
  "CMakeFiles/figure1_threshold_sweep.dir/figure1_threshold_sweep.cpp.o"
  "CMakeFiles/figure1_threshold_sweep.dir/figure1_threshold_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
