# Empty compiler generated dependencies file for figure1_threshold_sweep.
# This may be replaced when dependencies are built.
