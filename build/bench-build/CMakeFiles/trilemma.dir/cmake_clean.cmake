file(REMOVE_RECURSE
  "../bench/trilemma"
  "../bench/trilemma.pdb"
  "CMakeFiles/trilemma.dir/trilemma.cpp.o"
  "CMakeFiles/trilemma.dir/trilemma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trilemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
