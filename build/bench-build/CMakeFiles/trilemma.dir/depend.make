# Empty dependencies file for trilemma.
# This may be replaced when dependencies are built.
