# Empty dependencies file for robustness_attacks.
# This may be replaced when dependencies are built.
