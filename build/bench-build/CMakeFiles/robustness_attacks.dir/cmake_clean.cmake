file(REMOVE_RECURSE
  "../bench/robustness_attacks"
  "../bench/robustness_attacks.pdb"
  "CMakeFiles/robustness_attacks.dir/robustness_attacks.cpp.o"
  "CMakeFiles/robustness_attacks.dir/robustness_attacks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
