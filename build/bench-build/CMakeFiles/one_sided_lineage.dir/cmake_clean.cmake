file(REMOVE_RECURSE
  "../bench/one_sided_lineage"
  "../bench/one_sided_lineage.pdb"
  "CMakeFiles/one_sided_lineage.dir/one_sided_lineage.cpp.o"
  "CMakeFiles/one_sided_lineage.dir/one_sided_lineage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_sided_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
