# Empty compiler generated dependencies file for one_sided_lineage.
# This may be replaced when dependencies are built.
