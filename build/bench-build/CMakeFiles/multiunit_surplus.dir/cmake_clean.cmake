file(REMOVE_RECURSE
  "../bench/multiunit_surplus"
  "../bench/multiunit_surplus.pdb"
  "CMakeFiles/multiunit_surplus.dir/multiunit_surplus.cpp.o"
  "CMakeFiles/multiunit_surplus.dir/multiunit_surplus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiunit_surplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
