# Empty compiler generated dependencies file for multiunit_surplus.
# This may be replaced when dependencies are built.
