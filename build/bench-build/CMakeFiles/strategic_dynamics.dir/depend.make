# Empty dependencies file for strategic_dynamics.
# This may be replaced when dependencies are built.
