# Empty compiler generated dependencies file for strategic_dynamics.
# This may be replaced when dependencies are built.
