file(REMOVE_RECURSE
  "../bench/strategic_dynamics"
  "../bench/strategic_dynamics.pdb"
  "CMakeFiles/strategic_dynamics.dir/strategic_dynamics.cpp.o"
  "CMakeFiles/strategic_dynamics.dir/strategic_dynamics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategic_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
