# Empty dependencies file for table1_surplus.
# This may be replaced when dependencies are built.
