file(REMOVE_RECURSE
  "../bench/table1_surplus"
  "../bench/table1_surplus.pdb"
  "CMakeFiles/table1_surplus.dir/table1_surplus.cpp.o"
  "CMakeFiles/table1_surplus.dir/table1_surplus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_surplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
