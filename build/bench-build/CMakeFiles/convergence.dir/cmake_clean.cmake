file(REMOVE_RECURSE
  "../bench/convergence"
  "../bench/convergence.pdb"
  "CMakeFiles/convergence.dir/convergence.cpp.o"
  "CMakeFiles/convergence.dir/convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
