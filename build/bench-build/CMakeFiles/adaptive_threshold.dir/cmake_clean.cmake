file(REMOVE_RECURSE
  "../bench/adaptive_threshold"
  "../bench/adaptive_threshold.pdb"
  "CMakeFiles/adaptive_threshold.dir/adaptive_threshold.cpp.o"
  "CMakeFiles/adaptive_threshold.dir/adaptive_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
