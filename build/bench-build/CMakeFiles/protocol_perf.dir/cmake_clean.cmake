file(REMOVE_RECURSE
  "../bench/protocol_perf"
  "../bench/protocol_perf.pdb"
  "CMakeFiles/protocol_perf.dir/protocol_perf.cpp.o"
  "CMakeFiles/protocol_perf.dir/protocol_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
