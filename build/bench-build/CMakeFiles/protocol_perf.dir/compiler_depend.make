# Empty compiler generated dependencies file for protocol_perf.
# This may be replaced when dependencies are built.
