# Empty compiler generated dependencies file for cda_vs_call.
# This may be replaced when dependencies are built.
