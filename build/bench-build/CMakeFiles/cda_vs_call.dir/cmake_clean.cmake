file(REMOVE_RECURSE
  "../bench/cda_vs_call"
  "../bench/cda_vs_call.pdb"
  "CMakeFiles/cda_vs_call.dir/cda_vs_call.cpp.o"
  "CMakeFiles/cda_vs_call.dir/cda_vs_call.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cda_vs_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
