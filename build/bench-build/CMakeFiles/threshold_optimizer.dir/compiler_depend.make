# Empty compiler generated dependencies file for threshold_optimizer.
# This may be replaced when dependencies are built.
