file(REMOVE_RECURSE
  "../bench/threshold_optimizer"
  "../bench/threshold_optimizer.pdb"
  "CMakeFiles/threshold_optimizer.dir/threshold_optimizer.cpp.o"
  "CMakeFiles/threshold_optimizer.dir/threshold_optimizer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
