file(REMOVE_RECURSE
  "../bench/market_e2e"
  "../bench/market_e2e.pdb"
  "CMakeFiles/market_e2e.dir/market_e2e.cpp.o"
  "CMakeFiles/market_e2e.dir/market_e2e.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
