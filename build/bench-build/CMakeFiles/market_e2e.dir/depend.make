# Empty dependencies file for market_e2e.
# This may be replaced when dependencies are built.
