
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/fnda_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/fnda_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/order_book.cpp" "src/core/CMakeFiles/fnda_core.dir/order_book.cpp.o" "gcc" "src/core/CMakeFiles/fnda_core.dir/order_book.cpp.o.d"
  "/root/repo/src/core/outcome.cpp" "src/core/CMakeFiles/fnda_core.dir/outcome.cpp.o" "gcc" "src/core/CMakeFiles/fnda_core.dir/outcome.cpp.o.d"
  "/root/repo/src/core/surplus.cpp" "src/core/CMakeFiles/fnda_core.dir/surplus.cpp.o" "gcc" "src/core/CMakeFiles/fnda_core.dir/surplus.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/fnda_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/fnda_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
