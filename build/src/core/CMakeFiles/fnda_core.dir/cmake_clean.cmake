file(REMOVE_RECURSE
  "CMakeFiles/fnda_core.dir/instance.cpp.o"
  "CMakeFiles/fnda_core.dir/instance.cpp.o.d"
  "CMakeFiles/fnda_core.dir/order_book.cpp.o"
  "CMakeFiles/fnda_core.dir/order_book.cpp.o.d"
  "CMakeFiles/fnda_core.dir/outcome.cpp.o"
  "CMakeFiles/fnda_core.dir/outcome.cpp.o.d"
  "CMakeFiles/fnda_core.dir/surplus.cpp.o"
  "CMakeFiles/fnda_core.dir/surplus.cpp.o.d"
  "CMakeFiles/fnda_core.dir/validation.cpp.o"
  "CMakeFiles/fnda_core.dir/validation.cpp.o.d"
  "libfnda_core.a"
  "libfnda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
