# Empty compiler generated dependencies file for fnda_core.
# This may be replaced when dependencies are built.
