file(REMOVE_RECURSE
  "libfnda_core.a"
)
