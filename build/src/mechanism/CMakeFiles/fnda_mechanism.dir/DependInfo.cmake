
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mechanism/bilateral.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/bilateral.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/bilateral.cpp.o.d"
  "/root/repo/src/mechanism/dynamics.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/dynamics.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/dynamics.cpp.o.d"
  "/root/repo/src/mechanism/linear_feasibility.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/linear_feasibility.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/linear_feasibility.cpp.o.d"
  "/root/repo/src/mechanism/manipulation.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/manipulation.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/manipulation.cpp.o.d"
  "/root/repo/src/mechanism/multi_manipulation.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/multi_manipulation.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/multi_manipulation.cpp.o.d"
  "/root/repo/src/mechanism/properties.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/properties.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/properties.cpp.o.d"
  "/root/repo/src/mechanism/strategy.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/strategy.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/strategy.cpp.o.d"
  "/root/repo/src/mechanism/utility.cpp" "src/mechanism/CMakeFiles/fnda_mechanism.dir/utility.cpp.o" "gcc" "src/mechanism/CMakeFiles/fnda_mechanism.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/fnda_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fnda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
