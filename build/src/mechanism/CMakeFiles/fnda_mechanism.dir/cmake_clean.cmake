file(REMOVE_RECURSE
  "CMakeFiles/fnda_mechanism.dir/bilateral.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/bilateral.cpp.o.d"
  "CMakeFiles/fnda_mechanism.dir/dynamics.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/dynamics.cpp.o.d"
  "CMakeFiles/fnda_mechanism.dir/linear_feasibility.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/linear_feasibility.cpp.o.d"
  "CMakeFiles/fnda_mechanism.dir/manipulation.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/manipulation.cpp.o.d"
  "CMakeFiles/fnda_mechanism.dir/multi_manipulation.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/multi_manipulation.cpp.o.d"
  "CMakeFiles/fnda_mechanism.dir/properties.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/properties.cpp.o.d"
  "CMakeFiles/fnda_mechanism.dir/strategy.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/strategy.cpp.o.d"
  "CMakeFiles/fnda_mechanism.dir/utility.cpp.o"
  "CMakeFiles/fnda_mechanism.dir/utility.cpp.o.d"
  "libfnda_mechanism.a"
  "libfnda_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
