# Empty dependencies file for fnda_mechanism.
# This may be replaced when dependencies are built.
