file(REMOVE_RECURSE
  "libfnda_mechanism.a"
)
