file(REMOVE_RECURSE
  "libfnda_market.a"
)
