file(REMOVE_RECURSE
  "CMakeFiles/fnda_market.dir/audit.cpp.o"
  "CMakeFiles/fnda_market.dir/audit.cpp.o.d"
  "CMakeFiles/fnda_market.dir/bus.cpp.o"
  "CMakeFiles/fnda_market.dir/bus.cpp.o.d"
  "CMakeFiles/fnda_market.dir/cda.cpp.o"
  "CMakeFiles/fnda_market.dir/cda.cpp.o.d"
  "CMakeFiles/fnda_market.dir/client.cpp.o"
  "CMakeFiles/fnda_market.dir/client.cpp.o.d"
  "CMakeFiles/fnda_market.dir/clock.cpp.o"
  "CMakeFiles/fnda_market.dir/clock.cpp.o.d"
  "CMakeFiles/fnda_market.dir/escrow.cpp.o"
  "CMakeFiles/fnda_market.dir/escrow.cpp.o.d"
  "CMakeFiles/fnda_market.dir/exchange.cpp.o"
  "CMakeFiles/fnda_market.dir/exchange.cpp.o.d"
  "CMakeFiles/fnda_market.dir/identity.cpp.o"
  "CMakeFiles/fnda_market.dir/identity.cpp.o.d"
  "CMakeFiles/fnda_market.dir/ledger.cpp.o"
  "CMakeFiles/fnda_market.dir/ledger.cpp.o.d"
  "CMakeFiles/fnda_market.dir/server.cpp.o"
  "CMakeFiles/fnda_market.dir/server.cpp.o.d"
  "CMakeFiles/fnda_market.dir/settlement.cpp.o"
  "CMakeFiles/fnda_market.dir/settlement.cpp.o.d"
  "CMakeFiles/fnda_market.dir/zi_traders.cpp.o"
  "CMakeFiles/fnda_market.dir/zi_traders.cpp.o.d"
  "libfnda_market.a"
  "libfnda_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
