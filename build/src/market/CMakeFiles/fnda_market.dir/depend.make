# Empty dependencies file for fnda_market.
# This may be replaced when dependencies are built.
