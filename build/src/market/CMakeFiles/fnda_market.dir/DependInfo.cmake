
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/audit.cpp" "src/market/CMakeFiles/fnda_market.dir/audit.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/audit.cpp.o.d"
  "/root/repo/src/market/bus.cpp" "src/market/CMakeFiles/fnda_market.dir/bus.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/bus.cpp.o.d"
  "/root/repo/src/market/cda.cpp" "src/market/CMakeFiles/fnda_market.dir/cda.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/cda.cpp.o.d"
  "/root/repo/src/market/client.cpp" "src/market/CMakeFiles/fnda_market.dir/client.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/client.cpp.o.d"
  "/root/repo/src/market/clock.cpp" "src/market/CMakeFiles/fnda_market.dir/clock.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/clock.cpp.o.d"
  "/root/repo/src/market/escrow.cpp" "src/market/CMakeFiles/fnda_market.dir/escrow.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/escrow.cpp.o.d"
  "/root/repo/src/market/exchange.cpp" "src/market/CMakeFiles/fnda_market.dir/exchange.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/exchange.cpp.o.d"
  "/root/repo/src/market/identity.cpp" "src/market/CMakeFiles/fnda_market.dir/identity.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/identity.cpp.o.d"
  "/root/repo/src/market/ledger.cpp" "src/market/CMakeFiles/fnda_market.dir/ledger.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/ledger.cpp.o.d"
  "/root/repo/src/market/server.cpp" "src/market/CMakeFiles/fnda_market.dir/server.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/server.cpp.o.d"
  "/root/repo/src/market/settlement.cpp" "src/market/CMakeFiles/fnda_market.dir/settlement.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/settlement.cpp.o.d"
  "/root/repo/src/market/zi_traders.cpp" "src/market/CMakeFiles/fnda_market.dir/zi_traders.cpp.o" "gcc" "src/market/CMakeFiles/fnda_market.dir/zi_traders.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mechanism/CMakeFiles/fnda_mechanism.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/fnda_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fnda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
