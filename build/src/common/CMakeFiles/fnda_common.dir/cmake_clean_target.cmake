file(REMOVE_RECURSE
  "libfnda_common.a"
)
