# Empty compiler generated dependencies file for fnda_common.
# This may be replaced when dependencies are built.
