file(REMOVE_RECURSE
  "CMakeFiles/fnda_common.dir/logging.cpp.o"
  "CMakeFiles/fnda_common.dir/logging.cpp.o.d"
  "CMakeFiles/fnda_common.dir/money.cpp.o"
  "CMakeFiles/fnda_common.dir/money.cpp.o.d"
  "CMakeFiles/fnda_common.dir/rng.cpp.o"
  "CMakeFiles/fnda_common.dir/rng.cpp.o.d"
  "CMakeFiles/fnda_common.dir/statistics.cpp.o"
  "CMakeFiles/fnda_common.dir/statistics.cpp.o.d"
  "libfnda_common.a"
  "libfnda_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
