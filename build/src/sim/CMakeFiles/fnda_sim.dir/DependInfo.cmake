
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adaptive_threshold.cpp" "src/sim/CMakeFiles/fnda_sim.dir/adaptive_threshold.cpp.o" "gcc" "src/sim/CMakeFiles/fnda_sim.dir/adaptive_threshold.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/fnda_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/fnda_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/generators.cpp" "src/sim/CMakeFiles/fnda_sim.dir/generators.cpp.o" "gcc" "src/sim/CMakeFiles/fnda_sim.dir/generators.cpp.o.d"
  "/root/repo/src/sim/multi_experiment.cpp" "src/sim/CMakeFiles/fnda_sim.dir/multi_experiment.cpp.o" "gcc" "src/sim/CMakeFiles/fnda_sim.dir/multi_experiment.cpp.o.d"
  "/root/repo/src/sim/table.cpp" "src/sim/CMakeFiles/fnda_sim.dir/table.cpp.o" "gcc" "src/sim/CMakeFiles/fnda_sim.dir/table.cpp.o.d"
  "/root/repo/src/sim/threshold_search.cpp" "src/sim/CMakeFiles/fnda_sim.dir/threshold_search.cpp.o" "gcc" "src/sim/CMakeFiles/fnda_sim.dir/threshold_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/fnda_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fnda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
