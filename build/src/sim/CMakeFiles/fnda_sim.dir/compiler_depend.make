# Empty compiler generated dependencies file for fnda_sim.
# This may be replaced when dependencies are built.
