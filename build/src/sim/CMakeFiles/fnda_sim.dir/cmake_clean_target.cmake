file(REMOVE_RECURSE
  "libfnda_sim.a"
)
