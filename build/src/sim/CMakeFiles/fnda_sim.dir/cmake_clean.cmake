file(REMOVE_RECURSE
  "CMakeFiles/fnda_sim.dir/adaptive_threshold.cpp.o"
  "CMakeFiles/fnda_sim.dir/adaptive_threshold.cpp.o.d"
  "CMakeFiles/fnda_sim.dir/experiment.cpp.o"
  "CMakeFiles/fnda_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/fnda_sim.dir/generators.cpp.o"
  "CMakeFiles/fnda_sim.dir/generators.cpp.o.d"
  "CMakeFiles/fnda_sim.dir/multi_experiment.cpp.o"
  "CMakeFiles/fnda_sim.dir/multi_experiment.cpp.o.d"
  "CMakeFiles/fnda_sim.dir/table.cpp.o"
  "CMakeFiles/fnda_sim.dir/table.cpp.o.d"
  "CMakeFiles/fnda_sim.dir/threshold_search.cpp.o"
  "CMakeFiles/fnda_sim.dir/threshold_search.cpp.o.d"
  "libfnda_sim.a"
  "libfnda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
