file(REMOVE_RECURSE
  "CMakeFiles/fnda_serialize.dir/csv.cpp.o"
  "CMakeFiles/fnda_serialize.dir/csv.cpp.o.d"
  "CMakeFiles/fnda_serialize.dir/json.cpp.o"
  "CMakeFiles/fnda_serialize.dir/json.cpp.o.d"
  "libfnda_serialize.a"
  "libfnda_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
