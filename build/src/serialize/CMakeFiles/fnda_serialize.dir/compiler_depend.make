# Empty compiler generated dependencies file for fnda_serialize.
# This may be replaced when dependencies are built.
