file(REMOVE_RECURSE
  "libfnda_serialize.a"
)
