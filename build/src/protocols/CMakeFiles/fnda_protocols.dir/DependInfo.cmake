
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/combinatorial.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/combinatorial.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/combinatorial.cpp.o.d"
  "/root/repo/src/protocols/efficient.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/efficient.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/efficient.cpp.o.d"
  "/root/repo/src/protocols/kda.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/kda.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/kda.cpp.o.d"
  "/root/repo/src/protocols/multi_unit.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/multi_unit.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/multi_unit.cpp.o.d"
  "/root/repo/src/protocols/one_sided.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/one_sided.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/one_sided.cpp.o.d"
  "/root/repo/src/protocols/pmd.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/pmd.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/pmd.cpp.o.d"
  "/root/repo/src/protocols/random_threshold.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/random_threshold.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/random_threshold.cpp.o.d"
  "/root/repo/src/protocols/tpd.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/tpd.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/tpd.cpp.o.d"
  "/root/repo/src/protocols/tpd_multi.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/tpd_multi.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/tpd_multi.cpp.o.d"
  "/root/repo/src/protocols/tpd_rebate.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/tpd_rebate.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/tpd_rebate.cpp.o.d"
  "/root/repo/src/protocols/vcg.cpp" "src/protocols/CMakeFiles/fnda_protocols.dir/vcg.cpp.o" "gcc" "src/protocols/CMakeFiles/fnda_protocols.dir/vcg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fnda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
