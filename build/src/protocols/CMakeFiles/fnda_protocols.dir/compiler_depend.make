# Empty compiler generated dependencies file for fnda_protocols.
# This may be replaced when dependencies are built.
