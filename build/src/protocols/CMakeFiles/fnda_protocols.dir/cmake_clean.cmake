file(REMOVE_RECURSE
  "CMakeFiles/fnda_protocols.dir/combinatorial.cpp.o"
  "CMakeFiles/fnda_protocols.dir/combinatorial.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/efficient.cpp.o"
  "CMakeFiles/fnda_protocols.dir/efficient.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/kda.cpp.o"
  "CMakeFiles/fnda_protocols.dir/kda.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/multi_unit.cpp.o"
  "CMakeFiles/fnda_protocols.dir/multi_unit.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/one_sided.cpp.o"
  "CMakeFiles/fnda_protocols.dir/one_sided.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/pmd.cpp.o"
  "CMakeFiles/fnda_protocols.dir/pmd.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/random_threshold.cpp.o"
  "CMakeFiles/fnda_protocols.dir/random_threshold.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/tpd.cpp.o"
  "CMakeFiles/fnda_protocols.dir/tpd.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/tpd_multi.cpp.o"
  "CMakeFiles/fnda_protocols.dir/tpd_multi.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/tpd_rebate.cpp.o"
  "CMakeFiles/fnda_protocols.dir/tpd_rebate.cpp.o.d"
  "CMakeFiles/fnda_protocols.dir/vcg.cpp.o"
  "CMakeFiles/fnda_protocols.dir/vcg.cpp.o.d"
  "libfnda_protocols.a"
  "libfnda_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
