file(REMOVE_RECURSE
  "libfnda_protocols.a"
)
