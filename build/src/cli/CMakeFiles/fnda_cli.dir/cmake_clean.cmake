file(REMOVE_RECURSE
  "CMakeFiles/fnda_cli.dir/args.cpp.o"
  "CMakeFiles/fnda_cli.dir/args.cpp.o.d"
  "CMakeFiles/fnda_cli.dir/commands.cpp.o"
  "CMakeFiles/fnda_cli.dir/commands.cpp.o.d"
  "libfnda_cli.a"
  "libfnda_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
