file(REMOVE_RECURSE
  "libfnda_cli.a"
)
