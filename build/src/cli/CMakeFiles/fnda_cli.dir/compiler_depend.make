# Empty compiler generated dependencies file for fnda_cli.
# This may be replaced when dependencies are built.
