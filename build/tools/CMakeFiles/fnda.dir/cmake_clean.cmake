file(REMOVE_RECURSE
  "CMakeFiles/fnda.dir/fnda_cli.cpp.o"
  "CMakeFiles/fnda.dir/fnda_cli.cpp.o.d"
  "fnda"
  "fnda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
