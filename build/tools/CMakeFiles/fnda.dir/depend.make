# Empty dependencies file for fnda.
# This may be replaced when dependencies are built.
