file(REMOVE_RECURSE
  "CMakeFiles/cda_session.dir/cda_session.cpp.o"
  "CMakeFiles/cda_session.dir/cda_session.cpp.o.d"
  "cda_session"
  "cda_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cda_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
