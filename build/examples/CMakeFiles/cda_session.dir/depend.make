# Empty dependencies file for cda_session.
# This may be replaced when dependencies are built.
