file(REMOVE_RECURSE
  "CMakeFiles/exchange_day.dir/exchange_day.cpp.o"
  "CMakeFiles/exchange_day.dir/exchange_day.cpp.o.d"
  "exchange_day"
  "exchange_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
