# Empty dependencies file for exchange_day.
# This may be replaced when dependencies are built.
