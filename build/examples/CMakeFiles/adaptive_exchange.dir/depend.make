# Empty dependencies file for adaptive_exchange.
# This may be replaced when dependencies are built.
