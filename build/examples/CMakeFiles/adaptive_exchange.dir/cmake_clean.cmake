file(REMOVE_RECURSE
  "CMakeFiles/adaptive_exchange.dir/adaptive_exchange.cpp.o"
  "CMakeFiles/adaptive_exchange.dir/adaptive_exchange.cpp.o.d"
  "adaptive_exchange"
  "adaptive_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
