file(REMOVE_RECURSE
  "CMakeFiles/multiunit_trading.dir/multiunit_trading.cpp.o"
  "CMakeFiles/multiunit_trading.dir/multiunit_trading.cpp.o.d"
  "multiunit_trading"
  "multiunit_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiunit_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
