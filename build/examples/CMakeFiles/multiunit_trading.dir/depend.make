# Empty dependencies file for multiunit_trading.
# This may be replaced when dependencies are built.
