# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fnda_common_tests[1]_include.cmake")
include("/root/repo/build/tests/fnda_core_tests[1]_include.cmake")
include("/root/repo/build/tests/fnda_mechanism_tests[1]_include.cmake")
include("/root/repo/build/tests/fnda_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/fnda_serialize_tests[1]_include.cmake")
include("/root/repo/build/tests/fnda_cli_tests[1]_include.cmake")
include("/root/repo/build/tests/fnda_market_tests[1]_include.cmake")
include("/root/repo/build/tests/fnda_protocols_tests[1]_include.cmake")
