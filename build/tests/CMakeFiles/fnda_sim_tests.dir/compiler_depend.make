# Empty compiler generated dependencies file for fnda_sim_tests.
# This may be replaced when dependencies are built.
