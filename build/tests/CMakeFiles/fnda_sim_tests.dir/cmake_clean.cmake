file(REMOVE_RECURSE
  "CMakeFiles/fnda_sim_tests.dir/sim/adaptive_threshold_test.cpp.o"
  "CMakeFiles/fnda_sim_tests.dir/sim/adaptive_threshold_test.cpp.o.d"
  "CMakeFiles/fnda_sim_tests.dir/sim/experiment_test.cpp.o"
  "CMakeFiles/fnda_sim_tests.dir/sim/experiment_test.cpp.o.d"
  "CMakeFiles/fnda_sim_tests.dir/sim/generators_test.cpp.o"
  "CMakeFiles/fnda_sim_tests.dir/sim/generators_test.cpp.o.d"
  "CMakeFiles/fnda_sim_tests.dir/sim/multi_experiment_test.cpp.o"
  "CMakeFiles/fnda_sim_tests.dir/sim/multi_experiment_test.cpp.o.d"
  "CMakeFiles/fnda_sim_tests.dir/sim/parallel_experiment_test.cpp.o"
  "CMakeFiles/fnda_sim_tests.dir/sim/parallel_experiment_test.cpp.o.d"
  "CMakeFiles/fnda_sim_tests.dir/sim/table_test.cpp.o"
  "CMakeFiles/fnda_sim_tests.dir/sim/table_test.cpp.o.d"
  "CMakeFiles/fnda_sim_tests.dir/sim/threshold_search_test.cpp.o"
  "CMakeFiles/fnda_sim_tests.dir/sim/threshold_search_test.cpp.o.d"
  "fnda_sim_tests"
  "fnda_sim_tests.pdb"
  "fnda_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
