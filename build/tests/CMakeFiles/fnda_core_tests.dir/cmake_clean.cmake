file(REMOVE_RECURSE
  "CMakeFiles/fnda_core_tests.dir/core/instance_test.cpp.o"
  "CMakeFiles/fnda_core_tests.dir/core/instance_test.cpp.o.d"
  "CMakeFiles/fnda_core_tests.dir/core/order_book_test.cpp.o"
  "CMakeFiles/fnda_core_tests.dir/core/order_book_test.cpp.o.d"
  "CMakeFiles/fnda_core_tests.dir/core/outcome_test.cpp.o"
  "CMakeFiles/fnda_core_tests.dir/core/outcome_test.cpp.o.d"
  "CMakeFiles/fnda_core_tests.dir/core/surplus_test.cpp.o"
  "CMakeFiles/fnda_core_tests.dir/core/surplus_test.cpp.o.d"
  "CMakeFiles/fnda_core_tests.dir/core/validation_test.cpp.o"
  "CMakeFiles/fnda_core_tests.dir/core/validation_test.cpp.o.d"
  "fnda_core_tests"
  "fnda_core_tests.pdb"
  "fnda_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
