# Empty dependencies file for fnda_core_tests.
# This may be replaced when dependencies are built.
