
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocols/allocation_oracle_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/allocation_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/allocation_oracle_test.cpp.o.d"
  "/root/repo/tests/protocols/combinatorial_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/combinatorial_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/combinatorial_test.cpp.o.d"
  "/root/repo/tests/protocols/efficient_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/efficient_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/efficient_test.cpp.o.d"
  "/root/repo/tests/protocols/fuzz_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/fuzz_test.cpp.o.d"
  "/root/repo/tests/protocols/kda_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/kda_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/kda_test.cpp.o.d"
  "/root/repo/tests/protocols/multi_unit_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/multi_unit_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/multi_unit_test.cpp.o.d"
  "/root/repo/tests/protocols/one_sided_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/one_sided_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/one_sided_test.cpp.o.d"
  "/root/repo/tests/protocols/pmd_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/pmd_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/pmd_test.cpp.o.d"
  "/root/repo/tests/protocols/protocol_properties_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/protocol_properties_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/protocol_properties_test.cpp.o.d"
  "/root/repo/tests/protocols/random_threshold_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/random_threshold_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/random_threshold_test.cpp.o.d"
  "/root/repo/tests/protocols/threshold_sweep_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/threshold_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/threshold_sweep_test.cpp.o.d"
  "/root/repo/tests/protocols/tie_handling_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tie_handling_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tie_handling_test.cpp.o.d"
  "/root/repo/tests/protocols/tpd_multi_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tpd_multi_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tpd_multi_test.cpp.o.d"
  "/root/repo/tests/protocols/tpd_rebate_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tpd_rebate_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tpd_rebate_test.cpp.o.d"
  "/root/repo/tests/protocols/tpd_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tpd_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/tpd_test.cpp.o.d"
  "/root/repo/tests/protocols/vcg_test.cpp" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/vcg_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_protocols_tests.dir/protocols/vcg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/fnda_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fnda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanism/CMakeFiles/fnda_mechanism.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/fnda_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fnda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
