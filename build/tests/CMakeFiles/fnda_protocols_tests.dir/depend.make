# Empty dependencies file for fnda_protocols_tests.
# This may be replaced when dependencies are built.
