# Empty dependencies file for fnda_cli_tests.
# This may be replaced when dependencies are built.
