file(REMOVE_RECURSE
  "CMakeFiles/fnda_cli_tests.dir/cli/args_test.cpp.o"
  "CMakeFiles/fnda_cli_tests.dir/cli/args_test.cpp.o.d"
  "CMakeFiles/fnda_cli_tests.dir/cli/commands_test.cpp.o"
  "CMakeFiles/fnda_cli_tests.dir/cli/commands_test.cpp.o.d"
  "fnda_cli_tests"
  "fnda_cli_tests.pdb"
  "fnda_cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
