file(REMOVE_RECURSE
  "CMakeFiles/fnda_common_tests.dir/common/bootstrap_test.cpp.o"
  "CMakeFiles/fnda_common_tests.dir/common/bootstrap_test.cpp.o.d"
  "CMakeFiles/fnda_common_tests.dir/common/ids_test.cpp.o"
  "CMakeFiles/fnda_common_tests.dir/common/ids_test.cpp.o.d"
  "CMakeFiles/fnda_common_tests.dir/common/logging_test.cpp.o"
  "CMakeFiles/fnda_common_tests.dir/common/logging_test.cpp.o.d"
  "CMakeFiles/fnda_common_tests.dir/common/money_test.cpp.o"
  "CMakeFiles/fnda_common_tests.dir/common/money_test.cpp.o.d"
  "CMakeFiles/fnda_common_tests.dir/common/rng_test.cpp.o"
  "CMakeFiles/fnda_common_tests.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/fnda_common_tests.dir/common/statistics_test.cpp.o"
  "CMakeFiles/fnda_common_tests.dir/common/statistics_test.cpp.o.d"
  "fnda_common_tests"
  "fnda_common_tests.pdb"
  "fnda_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
