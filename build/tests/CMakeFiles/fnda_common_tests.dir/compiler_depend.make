# Empty compiler generated dependencies file for fnda_common_tests.
# This may be replaced when dependencies are built.
