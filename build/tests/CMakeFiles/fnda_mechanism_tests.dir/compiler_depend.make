# Empty compiler generated dependencies file for fnda_mechanism_tests.
# This may be replaced when dependencies are built.
