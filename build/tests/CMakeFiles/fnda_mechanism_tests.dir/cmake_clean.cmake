file(REMOVE_RECURSE
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/bilateral_test.cpp.o"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/bilateral_test.cpp.o.d"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/dynamics_test.cpp.o"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/dynamics_test.cpp.o.d"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/linear_feasibility_test.cpp.o"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/linear_feasibility_test.cpp.o.d"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/manipulation_test.cpp.o"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/manipulation_test.cpp.o.d"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/multi_manipulation_test.cpp.o"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/multi_manipulation_test.cpp.o.d"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/properties_test.cpp.o"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/properties_test.cpp.o.d"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/utility_test.cpp.o"
  "CMakeFiles/fnda_mechanism_tests.dir/mechanism/utility_test.cpp.o.d"
  "fnda_mechanism_tests"
  "fnda_mechanism_tests.pdb"
  "fnda_mechanism_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_mechanism_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
