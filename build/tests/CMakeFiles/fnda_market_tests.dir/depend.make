# Empty dependencies file for fnda_market_tests.
# This may be replaced when dependencies are built.
