
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/market/audit_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/audit_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/audit_test.cpp.o.d"
  "/root/repo/tests/market/bus_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/bus_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/bus_test.cpp.o.d"
  "/root/repo/tests/market/cda_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/cda_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/cda_test.cpp.o.d"
  "/root/repo/tests/market/clock_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/clock_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/clock_test.cpp.o.d"
  "/root/repo/tests/market/exchange_fuzz_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/exchange_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/exchange_fuzz_test.cpp.o.d"
  "/root/repo/tests/market/exchange_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/exchange_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/exchange_test.cpp.o.d"
  "/root/repo/tests/market/identity_escrow_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/identity_escrow_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/identity_escrow_test.cpp.o.d"
  "/root/repo/tests/market/ledger_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/ledger_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/ledger_test.cpp.o.d"
  "/root/repo/tests/market/reliability_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/reliability_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/reliability_test.cpp.o.d"
  "/root/repo/tests/market/server_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/server_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/server_test.cpp.o.d"
  "/root/repo/tests/market/settlement_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/settlement_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/settlement_test.cpp.o.d"
  "/root/repo/tests/market/soak_test.cpp" "tests/CMakeFiles/fnda_market_tests.dir/market/soak_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_market_tests.dir/market/soak_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/fnda_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fnda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanism/CMakeFiles/fnda_mechanism.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/fnda_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fnda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
