file(REMOVE_RECURSE
  "CMakeFiles/fnda_market_tests.dir/market/audit_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/audit_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/bus_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/bus_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/cda_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/cda_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/clock_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/clock_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/exchange_fuzz_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/exchange_fuzz_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/exchange_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/exchange_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/identity_escrow_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/identity_escrow_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/ledger_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/ledger_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/reliability_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/reliability_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/server_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/server_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/settlement_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/settlement_test.cpp.o.d"
  "CMakeFiles/fnda_market_tests.dir/market/soak_test.cpp.o"
  "CMakeFiles/fnda_market_tests.dir/market/soak_test.cpp.o.d"
  "fnda_market_tests"
  "fnda_market_tests.pdb"
  "fnda_market_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_market_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
