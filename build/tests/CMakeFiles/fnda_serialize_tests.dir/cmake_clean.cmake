file(REMOVE_RECURSE
  "CMakeFiles/fnda_serialize_tests.dir/serialize/csv_test.cpp.o"
  "CMakeFiles/fnda_serialize_tests.dir/serialize/csv_test.cpp.o.d"
  "CMakeFiles/fnda_serialize_tests.dir/serialize/json_test.cpp.o"
  "CMakeFiles/fnda_serialize_tests.dir/serialize/json_test.cpp.o.d"
  "fnda_serialize_tests"
  "fnda_serialize_tests.pdb"
  "fnda_serialize_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnda_serialize_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
