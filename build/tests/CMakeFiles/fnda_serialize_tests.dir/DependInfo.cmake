
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/serialize/csv_test.cpp" "tests/CMakeFiles/fnda_serialize_tests.dir/serialize/csv_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_serialize_tests.dir/serialize/csv_test.cpp.o.d"
  "/root/repo/tests/serialize/json_test.cpp" "tests/CMakeFiles/fnda_serialize_tests.dir/serialize/json_test.cpp.o" "gcc" "tests/CMakeFiles/fnda_serialize_tests.dir/serialize/json_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/fnda_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fnda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanism/CMakeFiles/fnda_mechanism.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/fnda_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fnda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fnda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/fnda_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
