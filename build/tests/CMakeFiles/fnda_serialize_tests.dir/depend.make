# Empty dependencies file for fnda_serialize_tests.
# This may be replaced when dependencies are built.
