// Monte-Carlo error analysis of the Table 1 pipeline.
//
// The paper reports 1000-instance averages without error bars; this bench
// supplies them — normal-approximation and percentile-bootstrap 95% CIs
// for the TPD surplus at several instance counts — so readers can judge
// how much of the measured-vs-paper gap in EXPERIMENTS.md is sampling
// noise versus real (RNG/tie-handling) differences.
#include <iostream>
#include <vector>

#include "common/statistics.h"
#include "core/surplus.h"
#include "protocols/tpd.h"
#include "sim/generators.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  constexpr std::size_t kPerSide = 50;
  const TpdProtocol tpd(money(50));
  const InstanceGenerator generator = fixed_count_generator(kPerSide, kPerSide);

  std::cout << "== Monte-Carlo error of the Table 1 cell (n = m = 50, "
               "TPD r = 50) ==\n";
  TextTable table({"instances", "mean surplus", "normal 95% CI",
                   "bootstrap 95% CI", "rel. error"});

  for (std::size_t instances : {50u, 100u, 250u, 500u, 1000u, 4000u}) {
    Rng rng(20010416);
    std::vector<double> sample;
    RunningStats stats;
    sample.reserve(instances);
    for (std::size_t run = 0; run < instances; ++run) {
      const SingleUnitInstance instance = generator(rng);
      const InstantiatedMarket market = instantiate_truthful(instance);
      Rng clear_rng = rng.split();
      const Outcome outcome = tpd.clear(market.book, clear_rng);
      const double surplus = realized_surplus(outcome, market.truth).total;
      sample.push_back(surplus);
      stats.add(surplus);
    }
    Rng boot_rng(7);
    const BootstrapInterval ci =
        bootstrap_mean_ci(sample, 0.95, 2000, boot_rng);
    table.add_row(
        {std::to_string(instances), format_fixed(stats.mean(), 1),
         "+/-" + format_fixed(stats.ci95_half_width(), 1),
         "[" + format_fixed(ci.lo, 1) + ", " + format_fixed(ci.hi, 1) + "]",
         format_fixed(100.0 * stats.ci95_half_width() / stats.mean(), 2) +
             "%"});
  }
  std::cout << table
            << "\nAt the paper's 1000 instances the cell is accurate to "
               "about +/-1%, which covers most of the difference between "
               "our measured values and the paper's (EXPERIMENTS.md).\n";
  return 0;
}
