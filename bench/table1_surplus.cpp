// Reproduces Table 1: social surplus of TPD (r = 50) vs PMD, n = m in
// {5, 10, 25, 50, 100, 500}, valuations U[0, 100], 1000 instances per row,
// ratios against the Pareto-efficient surplus.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace {

// Table 1 as printed in the paper (Section 7).
const std::vector<fnda::bench::PaperRow> kPaperTable1 = {
    {5, 103.4, 92.4, 84.4, 75.4, 105.9, 94.6, 96.7, 86.5},
    {10, 228.9, 95.9, 187.5, 78.6, 235.1, 98.5, 220.5, 92.4},
    {25, 609.6, 98.4, 519.9, 83.9, 617.9, 99.7, 599.0, 96.7},
    {50, 1255.9, 99.2, 1111.4, 87.8, 1265.7, 99.9, 1246.5, 98.4},
    {100, 2533.8, 99.6, 2314.3, 91.0, 2543.3, 100.0, 2527.8, 99.6},
    {500, 12738.3, 99.9, 12254.1, 96.1, 12745.5, 100.0, 12744.9, 100.0},
};

}  // namespace

int main() {
  using namespace fnda;

  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;

  std::vector<ComparisonResult> results;
  results.reserve(kPaperTable1.size());
  for (const auto& row : kPaperTable1) {
    ExperimentConfig config;
    config.instances = 1000;
    config.seed = 1'000 + static_cast<std::uint64_t>(row.size);
    results.push_back(run_comparison(
        fixed_count_generator(static_cast<std::size_t>(row.size),
                              static_cast<std::size_t>(row.size)),
        {&tpd, &pmd}, config));
  }

  bench::print_surplus_table(
      "Table 1: social surplus, n = m, values U[0,100], TPD r = 50, "
      "1000 instances",
      "n=m", kPaperTable1, results);
  return 0;
}
