// Best-response dynamics ablation (Section 8's discussion, quantified).
//
// Agents start truthful and iteratively best-respond over the full
// strategy space (misreports + up to one false name).  Under TPD the
// truthful profile is a dominant-strategy equilibrium: zero updates.
// Under PMD/kDA/VCG agents drift, convergence is not guaranteed, and the
// realized surplus (scored on true valuations) degrades — the
// "unpredictable outcome" cost of deploying a non-robust protocol.
#include <iostream>

#include "common/statistics.h"
#include "mechanism/dynamics.h"
#include "mechanism/properties.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"
#include "protocols/vcg.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const KDoubleAuction kda(0.5);
  const VcgDoubleAuction vcg;

  std::cout << "== Best-response dynamics: 30 random instances "
               "(<=5 agents/side, U[0,100]), max 6 sweeps ==\n";
  TextTable table({"protocol", "converged", "mean sweeps", "mean updates",
                   "mean deviators", "surplus retained"});

  for (const DoubleAuctionProtocol* protocol :
       {static_cast<const DoubleAuctionProtocol*>(&tpd),
        static_cast<const DoubleAuctionProtocol*>(&pmd),
        static_cast<const DoubleAuctionProtocol*>(&kda),
        static_cast<const DoubleAuctionProtocol*>(&vcg)}) {
    RunningStats sweeps, updates, deviators, retained;
    int converged = 0;
    constexpr int kInstances = 30;
    Rng rng(0xd10);
    InstanceSpec spec;
    spec.min_buyers = 2;
    spec.max_buyers = 5;
    spec.min_sellers = 2;
    spec.max_sellers = 5;
    for (int run = 0; run < kInstances; ++run) {
      const SingleUnitInstance instance = random_instance(spec, rng);
      DynamicsConfig config;
      config.max_sweeps = 6;
      config.search.max_declarations = 2;
      config.seed = rng();
      const DynamicsResult result =
          best_response_dynamics(*protocol, instance, config);
      converged += result.converged ? 1 : 0;
      sweeps.add(static_cast<double>(result.sweeps));
      updates.add(static_cast<double>(result.updates));
      deviators.add(static_cast<double>(result.deviators));
      if (result.truthful_surplus > 1e-9) {
        retained.add(result.final_surplus / result.truthful_surplus);
      } else {
        retained.add(1.0);
      }
    }
    table.add_row({protocol->name(),
                   std::to_string(converged) + "/" +
                       std::to_string(kInstances),
                   format_fixed(sweeps.mean(), 2),
                   format_fixed(updates.mean(), 2),
                   format_fixed(deviators.mean(), 2),
                   format_fixed(100.0 * retained.mean(), 1) + "%"});
  }
  std::cout << table << '\n';
  std::cout << "TPD: dominant-strategy equilibrium at truth — no agent "
               "ever moves, surplus fully retained.\nOthers: agents "
               "deliberate, deviate, and burn surplus, exactly the "
               "Section 8 argument for robustness.\n";
  return 0;
}
