// Reproduces Table 2: as Table 1 but with m and n drawn independently
// from Binomial(N, 0.5), N in {10, 20, 50, 100, 200, 1000}.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace {

const std::vector<fnda::bench::PaperRow> kPaperTable2 = {
    {10, 101.3, 91.7, 81.0, 73.3, 103.8, 94.0, 93.7, 84.8},
    {20, 223.4, 94.8, 175.7, 74.6, 231.2, 98.1, 213.4, 90.7},
    {50, 607.0, 97.8, 504.4, 81.3, 618.7, 99.7, 598.5, 96.5},
    {100, 1252.9, 98.8, 1076.7, 84.9, 1267.4, 99.9, 1247.8, 98.4},
    {200, 2492.0, 99.4, 2223.6, 88.7, 2506.6, 100.0, 2491.6, 99.4},
    {1000, 12724.0, 99.9, 12123.9, 95.2, 12734.9, 100.0, 12734.4, 100.0},
};

}  // namespace

int main() {
  using namespace fnda;

  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;

  std::vector<ComparisonResult> results;
  results.reserve(kPaperTable2.size());
  for (const auto& row : kPaperTable2) {
    ExperimentConfig config;
    config.instances = 1000;
    config.seed = 2'000 + static_cast<std::uint64_t>(row.size);
    results.push_back(run_comparison(binomial_count_generator(row.size),
                                     {&tpd, &pmd}, config));
  }

  bench::print_surplus_table(
      "Table 2: social surplus, m,n ~ B(N, 0.5), values U[0,100], "
      "TPD r = 50, 1000 instances",
      "N", kPaperTable2, results);
  return 0;
}
