// Continuous vs discrete double auctions (paper Section 1's taxonomy).
//
// On identical valuations (U[0,100], n = m), compares allocative
// efficiency of: the continuous double auction driven by budget-
// constrained zero-intelligence traders (Gode-Sunder, via the Friedman &
// Rust line the paper cites), the TPD call market at r = 50, and the PMD
// call market.  The discrete protocols get truthful declarations (their
// dominant strategy — the whole point of the paper); the CDA traders have
// no dominant strategy, so ZI-C random quoting is the standard baseline.
#include <iostream>

#include "common/statistics.h"
#include "market/zi_traders.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"
#include "sim/experiment.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  std::cout << "== Allocative efficiency: CDA(ZI-C) vs call markets "
               "(U[0,100], 300 instances) ==\n";
  TextTable table({"n=m", "CDA ZI-C", "mean trades (CDA)", "TPD r=50",
                   "PMD", "Pareto trades"});

  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;

  for (std::size_t size : {5u, 10u, 25u, 50u, 100u}) {
    // Discrete-time protocols through the standard experiment runner.
    ExperimentConfig config;
    config.instances = 300;
    config.seed = 0xcda0 + size;
    const ComparisonResult call = run_comparison(
        fixed_count_generator(size, size), {&tpd, &pmd}, config);

    // CDA with the same generator and seed (identical instance stream).
    Rng rng(config.seed);
    const InstanceGenerator generator = fixed_count_generator(size, size);
    RunningStats efficiency;
    RunningStats trades;
    for (std::size_t run = 0; run < config.instances; ++run) {
      const SingleUnitInstance instance = generator(rng);
      Rng session_rng = rng.split();
      const ZiSessionResult result = run_zi_session(instance, session_rng);
      if (result.efficient_surplus > 0.0) {
        efficiency.add(result.efficiency);
      }
      trades.add(static_cast<double>(result.trades));
    }

    table.add_row({std::to_string(size),
                   format_fixed(100.0 * efficiency.mean(), 1) + "%",
                   format_fixed(trades.mean(), 1),
                   format_fixed(100.0 * call.ratio_total("tpd"), 1) + "%",
                   format_fixed(100.0 * call.ratio_total("pmd"), 1) + "%",
                   format_fixed(call.pareto_trades.mean(), 1)});
  }
  std::cout << table << '\n';
  std::cout << "Call markets clear at one efficient instant; the CDA "
               "burns some surplus on intramarginal traders matching "
               "extramarginal ones, yet ZI-C discipline keeps it high — "
               "the classic double-auction robustness result.\n"
               "Only TPD among these keeps its efficiency when bidders "
               "can use false names (see robustness_attacks).\n";
  return 0;
}
