// Robustness ablation: Section 4's attacks on PMD, the same attacks under
// TPD (Examples 1-4), the Section 8 lottery-stuffing attack on the naive
// randomized-threshold protocol, and an exhaustive-deviation sweep over
// random instances measuring how often each protocol is manipulable.
//
// A population-scale search axis measures the parallel pruned engine
// against the serial reference on the SAME candidate space (fixed via
// grid_override) across all seven protocols: per-protocol speedup rows on
// a small account subset (the serial baseline is too slow for hundreds),
// engine-only throughput rows over --speedup-manipulators accounts, and
// an aggregate total-time ratio that --assert-search-speedup X turns into
// a hard gate (exit 1 below X).  Every speedup row also cross-checks the
// engine against the serial oracle bit-for-bit — a wrong best response
// fails the bench before any timing is reported.
//
// The static instances here search a frozen book once.  The live axis —
// attackers re-planning against a running MultiServerExchange every
// round, with overlapped warm-start search — is bench/robustness_live
// (see DESIGN.md §2j).
//
// Usage: robustness_attacks [--population N] [--speedup-accounts K]
//                           [--speedup-manipulators M] [--grid G]
//                           [--json PATH] [--assert-search-speedup X]
//                           [--search-axis 0|1]
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "mechanism/manipulation.h"
#include "mechanism/properties.h"
#include "protocols/efficient.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "protocols/tpd_rebate.h"
#include "protocols/vcg.h"
#include "sim/table.h"

namespace {

using namespace fnda;

SingleUnitInstance example1() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(5)};
  return instance;
}

SingleUnitInstance example2() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(12)};
  return instance;
}

void paper_examples() {
  std::cout << "== Paper examples: best deviation of the Section 4 "
               "manipulator ==\n";
  TextTable table({"scenario", "protocol", "truthful u", "best deviant u",
                   "best strategy", "paper says"});

  struct Row {
    const char* scenario;
    const DoubleAuctionProtocol& protocol;
    SingleUnitInstance instance;
    ManipulatorSpec manipulator;
    const char* expectation;
  };
  static const PmdProtocol pmd;
  static const TpdProtocol tpd45(money(4.5));
  static const TpdProtocol tpd75(money(7.5));
  const Row rows[] = {
      {"Example 1 (seller v=4)", pmd, example1(), {Side::kSeller, 2},
       "0.5 -> 0.9 via fake buyer@4.8"},
      {"Example 2 (seller v=4)", pmd, example2(), {Side::kSeller, 2},
       "0 -> 1 via fake seller@6"},
      {"Example 3 (same, r=4.5)", tpd45, example1(), {Side::kSeller, 2},
       "attack useless"},
      {"Example 4 (same, r=7.5)", tpd75, example2(), {Side::kSeller, 2},
       "attack useless"},
  };
  for (const Row& row : rows) {
    const DeviationEvaluator evaluator(row.protocol, row.instance,
                                       row.manipulator);
    const SearchResult result = find_best_deviation(evaluator, {});
    table.add_row({row.scenario, row.protocol.name(),
                   format_fixed(result.truthful_utility, 3),
                   format_fixed(result.best_utility, 3),
                   result.profitable() ? result.best_strategy.to_string()
                                       : "(truth is optimal)",
                   row.expectation});
  }
  std::cout << table << '\n';
}

void random_sweep() {
  std::cout << "== Manipulability on random instances "
               "(values U[0,100], <=6 per side, exhaustive deviations "
               "incl. one false name) ==\n";
  TextTable table({"protocol", "searches", "violations", "violation rate",
                   "expected"});

  static const PmdProtocol pmd;
  static const TpdProtocol tpd(money(50));
  static const RandomThresholdProtocol lottery(money(50));

  struct Row {
    const DoubleAuctionProtocol& protocol;
    std::size_t replicates;
    const char* expected;
  };
  // The randomized protocol needs outcome averaging; 64 common-random-
  // number replicates make the win-probability gain visible.
  const Row rows[] = {
      {tpd, 1, "0 (Theorem 1)"},
      {pmd, 1, "> 0 (Section 4)"},
      {lottery, 64, "> 0 (Section 8 lottery stuffing)"},
  };
  for (const Row& row : rows) {
    IcCheckConfig config;
    config.instances = 40;
    config.manipulators_per_instance = 2;
    config.instance_spec.max_buyers = 6;
    config.instance_spec.max_sellers = 6;
    config.search.max_declarations = 2;
    config.eval.replicates = row.replicates;
    config.seed = 0x0b5e55ed;
    config.max_violations = 1000;
    config.epsilon = 1e-3;  // ignore tie-breaking noise for the lottery
    const IcCheckReport report =
        check_incentive_compatibility(row.protocol, config);
    table.add_row(
        {row.protocol.name(), std::to_string(report.searches_run),
         std::to_string(report.violations.size()),
         format_fixed(100.0 * static_cast<double>(report.violations.size()) /
                          static_cast<double>(report.searches_run),
                      1) +
             "%",
         row.expected});
  }
  std::cout << table << '\n';
}

/// Parameters of the population-scale search axis.
struct SearchAxisConfig {
  std::size_t population = 250;          // accounts per side
  std::size_t speedup_accounts = 2;      // serial-vs-engine subset
  std::size_t speedup_manipulators = 200;  // engine throughput accounts
  std::size_t grid = 12;                 // fixed candidate values
  std::uint64_t seed = 0x0a77ac4;
  double assert_search_speedup = -1.0;   // < 0 disables the gate
};

/// Random population instance: `population` values per side, U[0,100].
SingleUnitInstance population_instance(std::size_t population,
                                       std::uint64_t seed) {
  SingleUnitInstance instance;
  Rng rng(seed);
  for (std::size_t i = 0; i < population; ++i) {
    instance.buyer_values.push_back(
        Money::from_micros(static_cast<std::int64_t>(rng.below(100'000'001))));
    instance.seller_values.push_back(
        Money::from_micros(static_cast<std::int64_t>(rng.below(100'000'001))));
  }
  return instance;
}

/// Evenly spaced candidate grid over [0, 100] — the fixed declaration
/// space shared by the serial baseline and the engine, so the speedup is
/// measured on identical work.
std::vector<Money> fixed_grid(std::size_t points) {
  std::vector<Money> grid;
  for (std::size_t i = 0; i < points; ++i) {
    grid.push_back(Money::from_micros(static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(i) * 100'000'000) /
        (points > 1 ? points - 1 : 1))));
  }
  return grid;
}

/// Serial-vs-engine and engine-throughput measurements over every
/// protocol.  Returns false when the engine diverges from the oracle or
/// the aggregate speedup gate fails.
bool search_speedup_axis(const SearchAxisConfig& axis,
                         std::vector<bench::JsonBenchRecord>* records) {
  static const TpdProtocol tpd(money(50));
  static const PmdProtocol pmd;
  static const KDoubleAuction kda(0.5);
  static const EfficientClearing efficient;
  static const VcgDoubleAuction vcg;
  static const RandomThresholdProtocol lottery(money(50));
  static const TpdWithRebates rebates(money(50));
  const DoubleAuctionProtocol* protocols[] = {
      &tpd, &pmd, &kda, &efficient, &vcg, &lottery, &rebates};

  const SingleUnitInstance instance =
      population_instance(axis.population, axis.seed);
  SearchConfig engine_config;
  engine_config.grid_override = fixed_grid(axis.grid);
  engine_config.threads = 0;  // hardware concurrency
  SearchConfig serial_config = engine_config;

  std::cout << "== Search engine vs serial reference ("
            << axis.population << "x" << axis.population
            << " accounts, grid " << axis.grid << ", "
            << axis.speedup_accounts << " serial-checked manipulators, "
            << axis.speedup_manipulators << " engine-only) ==\n";
  TextTable table({"protocol", "serial ms", "engine ms", "speedup",
                   "evaluated/enumerated", "pruned", "fast pos"});

  double serial_total_ns = 0.0;
  double engine_total_ns = 0.0;
  for (const DoubleAuctionProtocol* protocol : protocols) {
    double serial_ns = 0.0;
    double engine_ns = 0.0;
    SearchStats engine_stats;
    // Serial-vs-engine on the same small account subset; each pair is
    // also the correctness oracle for this instance shape.
    for (std::size_t a = 0; a < axis.speedup_accounts; ++a) {
      const ManipulatorSpec manipulator{a % 2 == 0 ? Side::kBuyer
                                                   : Side::kSeller,
                                        a / 2};
      const DeviationEvaluator evaluator(*protocol, instance, manipulator);
      const SearchResult serial =
          find_best_deviation_serial(evaluator, serial_config);
      const SearchResult engine = find_best_deviation(evaluator,
                                                      engine_config);
      serial_ns += static_cast<double>(serial.stats.wall_time_ns);
      engine_ns += static_cast<double>(engine.stats.wall_time_ns);
      engine_stats.merge_from(engine.stats);
      if (engine.best_utility != serial.best_utility ||
          engine.truthful_utility != serial.truthful_utility ||
          engine.strategies_evaluated != serial.strategies_evaluated ||
          engine.best_strategy.to_string() !=
              serial.best_strategy.to_string()) {
        std::cerr << "FAIL: engine diverged from serial oracle on "
                  << protocol->name() << " manipulator #" << a << '\n';
        return false;
      }
    }
    serial_total_ns += serial_ns;
    engine_total_ns += engine_ns;
    const double speedup = engine_ns > 0.0 ? serial_ns / engine_ns : 0.0;
    table.add_row(
        {protocol->name(), format_fixed(serial_ns / 1e6, 1),
         format_fixed(engine_ns / 1e6, 1), format_fixed(speedup, 1) + "x",
         std::to_string(engine_stats.strategies_evaluated) + "/" +
             std::to_string(engine_stats.strategies_enumerated),
         std::to_string(engine_stats.pruned_by_bound +
                        engine_stats.pruned_in_subtree),
         std::to_string(engine_stats.fast_positions)});

    bench::JsonBenchRecord row;
    row.name = "search_speedup/" + protocol->name();
    row.real_time_ns = engine_ns;
    row.items_per_second =
        engine_ns > 0.0
            ? 1e9 * static_cast<double>(engine_stats.strategies_enumerated) /
                  engine_ns
            : 0.0;
    row.counters = {
        {"serial_ns", serial_ns},
        {"engine_ns", engine_ns},
        {"speedup", speedup},
        {"population", static_cast<double>(axis.population)},
        {"manipulators", static_cast<double>(axis.speedup_accounts)},
        {"candidates_enumerated",
         static_cast<double>(engine_stats.strategies_enumerated)},
        {"candidates_evaluated",
         static_cast<double>(engine_stats.strategies_evaluated)},
        {"pruned", static_cast<double>(engine_stats.pruned_by_bound +
                                       engine_stats.pruned_in_subtree)},
        {"dedup_skipped", static_cast<double>(engine_stats.dedup_skipped)},
        {"fast_positions",
         static_cast<double>(engine_stats.fast_positions)},
        {"clears_performed",
         static_cast<double>(engine_stats.clears_performed)},
    };
    records->push_back(row);
  }
  std::cout << table;
  const double aggregate =
      engine_total_ns > 0.0 ? serial_total_ns / engine_total_ns : 0.0;
  std::cout << "aggregate speedup (total serial / total engine): "
            << format_fixed(aggregate, 1) << "x\n\n";

  // Engine-only throughput at population scale: the account counts the
  // serial baseline cannot reach.
  std::cout << "== Engine throughput over " << axis.speedup_manipulators
            << " manipulator accounts ==\n";
  TextTable throughput({"protocol", "total ms", "us/account",
                        "candidates/s", "fast pos", "clears"});
  for (const DoubleAuctionProtocol* protocol : protocols) {
    double total_ns = 0.0;
    SearchStats stats;
    for (std::size_t m = 0; m < axis.speedup_manipulators; ++m) {
      const ManipulatorSpec manipulator{
          m % 2 == 0 ? Side::kBuyer : Side::kSeller,
          (m / 2) % axis.population};
      const DeviationEvaluator evaluator(*protocol, instance, manipulator);
      const SearchResult result = find_best_deviation(evaluator,
                                                      engine_config);
      total_ns += static_cast<double>(result.stats.wall_time_ns);
      stats.merge_from(result.stats);
    }
    const double candidates_per_second =
        total_ns > 0.0
            ? 1e9 * static_cast<double>(stats.strategies_enumerated) /
                  total_ns
            : 0.0;
    throughput.add_row(
        {protocol->name(), format_fixed(total_ns / 1e6, 1),
         format_fixed(total_ns / 1e3 /
                          static_cast<double>(axis.speedup_manipulators),
                      1),
         format_fixed(candidates_per_second, 0),
         std::to_string(stats.fast_positions),
         std::to_string(stats.clears_performed)});

    bench::JsonBenchRecord row;
    row.name = "search_throughput/" + protocol->name();
    row.real_time_ns = total_ns;
    row.iterations = axis.speedup_manipulators;
    row.items_per_second = candidates_per_second;
    row.counters = {
        {"population", static_cast<double>(axis.population)},
        {"manipulators", static_cast<double>(axis.speedup_manipulators)},
        {"candidates_enumerated",
         static_cast<double>(stats.strategies_enumerated)},
        {"candidates_evaluated",
         static_cast<double>(stats.strategies_evaluated)},
        {"pruned", static_cast<double>(stats.pruned_by_bound +
                                       stats.pruned_in_subtree)},
        {"fast_positions", static_cast<double>(stats.fast_positions)},
        {"clears_performed", static_cast<double>(stats.clears_performed)},
    };
    records->push_back(row);
  }
  std::cout << throughput << '\n';

  bench::JsonBenchRecord aggregate_row;
  aggregate_row.name = "search_speedup/aggregate";
  aggregate_row.real_time_ns = engine_total_ns;
  aggregate_row.counters = {
      {"serial_ns", serial_total_ns},
      {"engine_ns", engine_total_ns},
      {"speedup", aggregate},
      {"population", static_cast<double>(axis.population)},
      {"protocols", 7.0},
  };
  records->push_back(aggregate_row);

  if (axis.assert_search_speedup >= 0.0 &&
      aggregate < axis.assert_search_speedup) {
    std::cerr << "FAIL: aggregate search speedup " << aggregate
              << "x below required " << axis.assert_search_speedup << "x\n";
    return false;
  }
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--population N] [--speedup-accounts K]\n"
               "       [--speedup-manipulators M] [--grid G] [--json PATH]\n"
               "       [--assert-search-speedup X] [--search-axis 0|1]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SearchAxisConfig axis;
  bool search_axis = true;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--population" && (value = next())) {
      axis.population = std::max<std::size_t>(2, std::stoull(value));
    } else if (arg == "--speedup-accounts" && (value = next())) {
      axis.speedup_accounts = std::max<std::size_t>(1, std::stoull(value));
    } else if (arg == "--speedup-manipulators" && (value = next())) {
      axis.speedup_manipulators =
          std::max<std::size_t>(1, std::stoull(value));
    } else if (arg == "--grid" && (value = next())) {
      axis.grid = std::max<std::size_t>(2, std::stoull(value));
    } else if (arg == "--seed" && (value = next())) {
      axis.seed = std::stoull(value);
    } else if (arg == "--assert-search-speedup" && (value = next())) {
      axis.assert_search_speedup = std::stod(value);
    } else if (arg == "--search-axis" && (value = next())) {
      search_axis = std::stoull(value) != 0;
    } else if (arg == "--json" && (value = next())) {
      json_path = value;
    } else {
      return usage(argv[0]);
    }
  }

  paper_examples();
  random_sweep();

  bool ok = true;
  std::vector<bench::JsonBenchRecord> records;
  if (search_axis) {
    ok = search_speedup_axis(axis, &records);
  }
  if (!json_path.empty() && !records.empty()) {
    if (!bench::write_benchmark_json_file(json_path, argv[0], records)) {
      std::cerr << "FAIL: cannot write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }
  return ok ? 0 : 1;
}
