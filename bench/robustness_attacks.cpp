// Robustness ablation: Section 4's attacks on PMD, the same attacks under
// TPD (Examples 1-4), the Section 8 lottery-stuffing attack on the naive
// randomized-threshold protocol, and an exhaustive-deviation sweep over
// random instances measuring how often each protocol is manipulable.
#include <iostream>

#include "mechanism/properties.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "sim/table.h"

namespace {

using namespace fnda;

SingleUnitInstance example1() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(5)};
  return instance;
}

SingleUnitInstance example2() {
  SingleUnitInstance instance;
  instance.buyer_values = {money(9), money(8), money(7), money(4)};
  instance.seller_values = {money(2), money(3), money(4), money(12)};
  return instance;
}

void paper_examples() {
  std::cout << "== Paper examples: best deviation of the Section 4 "
               "manipulator ==\n";
  TextTable table({"scenario", "protocol", "truthful u", "best deviant u",
                   "best strategy", "paper says"});

  struct Row {
    const char* scenario;
    const DoubleAuctionProtocol& protocol;
    SingleUnitInstance instance;
    ManipulatorSpec manipulator;
    const char* expectation;
  };
  static const PmdProtocol pmd;
  static const TpdProtocol tpd45(money(4.5));
  static const TpdProtocol tpd75(money(7.5));
  const Row rows[] = {
      {"Example 1 (seller v=4)", pmd, example1(), {Side::kSeller, 2},
       "0.5 -> 0.9 via fake buyer@4.8"},
      {"Example 2 (seller v=4)", pmd, example2(), {Side::kSeller, 2},
       "0 -> 1 via fake seller@6"},
      {"Example 3 (same, r=4.5)", tpd45, example1(), {Side::kSeller, 2},
       "attack useless"},
      {"Example 4 (same, r=7.5)", tpd75, example2(), {Side::kSeller, 2},
       "attack useless"},
  };
  for (const Row& row : rows) {
    const DeviationEvaluator evaluator(row.protocol, row.instance,
                                       row.manipulator);
    const SearchResult result = find_best_deviation(evaluator, {});
    table.add_row({row.scenario, row.protocol.name(),
                   format_fixed(result.truthful_utility, 3),
                   format_fixed(result.best_utility, 3),
                   result.profitable() ? result.best_strategy.to_string()
                                       : "(truth is optimal)",
                   row.expectation});
  }
  std::cout << table << '\n';
}

void random_sweep() {
  std::cout << "== Manipulability on random instances "
               "(values U[0,100], <=6 per side, exhaustive deviations "
               "incl. one false name) ==\n";
  TextTable table({"protocol", "searches", "violations", "violation rate",
                   "expected"});

  static const PmdProtocol pmd;
  static const TpdProtocol tpd(money(50));
  static const RandomThresholdProtocol lottery(money(50));

  struct Row {
    const DoubleAuctionProtocol& protocol;
    std::size_t replicates;
    const char* expected;
  };
  // The randomized protocol needs outcome averaging; 64 common-random-
  // number replicates make the win-probability gain visible.
  const Row rows[] = {
      {tpd, 1, "0 (Theorem 1)"},
      {pmd, 1, "> 0 (Section 4)"},
      {lottery, 64, "> 0 (Section 8 lottery stuffing)"},
  };
  for (const Row& row : rows) {
    IcCheckConfig config;
    config.instances = 40;
    config.manipulators_per_instance = 2;
    config.instance_spec.max_buyers = 6;
    config.instance_spec.max_sellers = 6;
    config.search.max_declarations = 2;
    config.eval.replicates = row.replicates;
    config.seed = 0x0b5e55ed;
    config.max_violations = 1000;
    config.epsilon = 1e-3;  // ignore tie-breaking noise for the lottery
    const IcCheckReport report =
        check_incentive_compatibility(row.protocol, config);
    table.add_row(
        {row.protocol.name(), std::to_string(report.searches_run),
         std::to_string(report.violations.size()),
         format_fixed(100.0 * static_cast<double>(report.violations.size()) /
                          static_cast<double>(report.searches_run),
                      1) +
             "%",
         row.expected});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  paper_examples();
  random_sweep();
  return 0;
}
