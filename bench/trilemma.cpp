// The mechanism-design trilemma, measured.
//
// Myerson-Satterthwaite: no double auction is simultaneously (a)
// dominant-strategy incentive compatible, (b) Pareto efficient, and (c)
// budget balanced + individually rational.  Each protocol in this library
// picks a different corner to give up; this bench puts them side by side
// on identical workloads, adding the paper's fourth axis — false-name
// robustness — that motivates TPD.
#include <iostream>
#include <memory>

#include "mechanism/properties.h"
#include "protocols/efficient.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "protocols/tpd_rebate.h"
#include "protocols/vcg.h"
#include "sim/experiment.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const VcgDoubleAuction vcg;
  const KDoubleAuction kda(0.5);
  const RandomThresholdProtocol lottery(money(50));
  const EfficientClearing efficient;

  ExperimentConfig config;
  config.instances = 1000;
  config.seed = 0x7311e;
  config.validation.allow_deficit = true;  // VCG is in the lineup
  const ComparisonResult result =
      run_comparison(fixed_count_generator(50, 50),
                     {&tpd, &pmd, &vcg, &kda, &lottery, &efficient}, config);

  std::cout << "== Design-space comparison (n = m = 50, U[0,100], 1000 "
               "instances, truthful play) ==\n";
  TextTable table({"protocol", "efficiency", "traders keep", "auctioneer",
                   "IC (misreports)", "IC (false names)"});

  struct Row {
    const char* name;
    const char* ic;
    const char* fn;
  };
  const Row rows[] = {
      {"tpd", "yes (Thm 1)", "YES (Thm 1)"},
      {"pmd", "yes (McAfee'92)", "no (Sec. 4)"},
      {"vcg", "yes (Clarke)", "no (SYM'99)"},
      {"kda", "no (Chatterjee-Samuelson)", "no"},
      {"random-threshold", "yes", "no (lottery stuffing)"},
      {"efficient", "no (oracle only)", "no"},
  };
  for (const Row& row : rows) {
    const ProtocolSummary& summary = result.summary(row.name);
    table.add_row({row.name,
                   format_fixed(100.0 * result.ratio_total(row.name), 1) + "%",
                   format_fixed(100.0 * result.ratio_except_auctioneer(row.name),
                                1) + "%",
                   format_fixed(summary.auctioneer.mean(), 1), row.ic,
                   row.fn});
  }
  std::cout << table << '\n';
  std::cout << "VCG's negative auctioneer column is the budget deficit that "
               "rules it out in practice;\nkDA/efficient buy 100% "
               "efficiency by abandoning incentive compatibility;\nTPD is "
               "the only row that is IC under false names, paying with the "
               "auctioneer's cut.\n\n";

  std::cout << "== Verifying the IC columns empirically (30 random "
               "instances each, exhaustive deviations) ==\n";
  TextTable ic_table({"protocol", "misreport violations", "false-name "
                      "violations"});
  const DoubleAuctionProtocol* protocols[] = {&tpd, &pmd, &vcg, &kda};
  for (const DoubleAuctionProtocol* protocol : protocols) {
    auto sweep = [&](std::size_t max_declarations) {
      IcCheckConfig ic;
      ic.instances = 30;
      ic.manipulators_per_instance = 2;
      ic.instance_spec.max_buyers = 5;
      ic.instance_spec.max_sellers = 5;
      ic.search.max_declarations = max_declarations;
      ic.seed = 0x1c;
      ic.max_violations = 1000;
      // Misreport-only sweeps must also exclude absence and wrong-side
      // bids to test the classical (single own-side report) notion.
      const IcCheckReport report =
          check_incentive_compatibility(*protocol, ic);
      std::size_t classical = 0;
      for (const IcViolation& v : report.violations) {
        const bool single_own_side =
            v.strategy.declarations.size() == 1 &&
            v.strategy.declarations[0].side == v.manipulator.role;
        if (max_declarations == 1 ? single_own_side : true) ++classical;
      }
      return std::to_string(classical) + "/" +
             std::to_string(report.searches_run);
    };
    ic_table.add_row({protocol->name(), sweep(1), sweep(2)});
  }
  std::cout << ic_table << '\n';

  std::cout << "== Why not just rebate the auctioneer's revenue? ==\n";
  // Bailey-Cavallo-style rebates on top of TPD: each identity receives
  // 1/N of the revenue computed without it.
  const TpdWithRebates rebated(money(50));
  ExperimentConfig rebate_config;
  rebate_config.instances = 500;
  rebate_config.seed = 0x2eb;
  rebate_config.validation.allow_deficit = true;
  const ComparisonResult with_rebates = run_comparison(
      fixed_count_generator(50, 50), {&rebated, &tpd}, rebate_config);
  TextTable rebate_table({"protocol", "traders keep", "auctioneer"});
  for (const char* name : {"tpd", "tpd-rebate"}) {
    rebate_table.add_row(
        {name,
         format_fixed(100.0 * with_rebates.ratio_except_auctioneer(name), 1) +
             "%",
         format_fixed(with_rebates.summary(name).auctioneer.mean(), 1)});
  }
  IcCheckConfig rebate_ic;
  rebate_ic.instances = 20;
  rebate_ic.manipulators_per_instance = 2;
  rebate_ic.instance_spec.max_buyers = 5;
  rebate_ic.instance_spec.max_sellers = 5;
  rebate_ic.search.max_declarations = 2;
  rebate_ic.seed = 0x2ec;
  rebate_ic.max_violations = 1000;
  const IcCheckReport rebate_report =
      check_incentive_compatibility(rebated, rebate_ic);
  std::cout << rebate_table
            << "rebates hand the revenue back to the traders... but "
            << rebate_report.violations.size() << "/"
            << rebate_report.searches_run
            << " deviation searches now find profitable FALSE-NAME "
               "manipulations\n(each pseudonym collects its own rebate "
               "share), and balanced books pay rebates the market never "
               "collected.\nThe paper's choice — let the auctioneer keep "
               "the spread — is what keeps TPD false-name-proof.\n";
  return 0;
}
