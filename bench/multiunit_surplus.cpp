// Section 9 extension: multi-unit TPD.  Replays Example 5, then measures
// efficiency on random multi-unit workloads with decreasing marginal
// utilities (the stock/bond/FX setting the section motivates).
#include <algorithm>
#include <iostream>

#include "common/statistics.h"
#include "protocols/tpd_multi.h"
#include "sim/multi_experiment.h"
#include "sim/table.h"

namespace {

using namespace fnda;

void example5() {
  std::cout << "== Example 5 (Section 9) ==\n";
  MultiUnitBook book;
  book.add_buyer(IdentityId{0}, {money(9), money(8)});  // buyer x
  book.add_buyer(IdentityId{1}, {money(7)});
  book.add_buyer(IdentityId{2}, {money(6)});
  book.add_buyer(IdentityId{3}, {money(4)});
  for (std::uint64_t s = 0; s < 5; ++s) {
    static const double kAsks[] = {2, 3, 4, 5, 7};
    book.add_seller(IdentityId{10 + s}, {money(kAsks[s])});
  }
  Rng rng(1);
  const MultiUnitOutcome outcome =
      TpdMultiUnitProtocol(money(4.5)).clear(book, rng);

  TextTable table({"participant", "units", "total", "paper"});
  const auto* x = outcome.buyer(IdentityId{0});
  table.add_row({"buyer x {9,8}", std::to_string(x->units),
                 x->total_paid.to_string(), "pays 10.5"});
  const auto* b7 = outcome.buyer(IdentityId{1});
  table.add_row({"buyer {7}", std::to_string(b7->units),
                 b7->total_paid.to_string(), "pays 6"});
  table.add_row({"each winning seller", "1", "4.5", "receives r = 4.5"});
  table.add_row({"units traded", std::to_string(outcome.units_traded()), "-",
                 "3"});
  std::cout << table << '\n';
}

void efficiency_sweep() {
  std::cout << "== Multi-unit TPD efficiency (r = 50, 1-4 units per "
               "participant, marginals U[0,100], 300 instances) ==\n";
  TextTable table({"participants/side", "surplus", "ratio", "ex-auctioneer",
                   "ratio"});
  const TpdMultiUnitProtocol protocol(money(50));
  for (std::size_t size : {5u, 10u, 25u, 50u, 100u}) {
    MultiUnitWorkload workload;
    workload.buyers = size;
    workload.sellers = size;
    const MultiExperimentResult result =
        run_multi_experiment(protocol, workload, 300, 9000 + size);
    table.add_row({std::to_string(size),
                   format_fixed(result.total.mean(), 1),
                   format_fixed(100.0 * result.ratio_total(), 1) + "%",
                   format_fixed(result.except_auctioneer.mean(), 1),
                   format_fixed(100.0 * result.ratio_except_auctioneer(), 1) +
                       "%"});
  }
  std::cout << table
            << "\n(expected shape: ratios rise toward 100% with market "
               "size, as in Table 1)\n";
}

}  // namespace

int main() {
  example5();
  efficiency_sweep();
  return 0;
}
