// Market-substrate throughput benchmark.
//
// Measures three things at a configurable client count:
//   1. legacy_substrate_roundtrip — the pre-change substrate (the seed's
//      comparison-heap EventQueue plus the string-keyed bus with a
//      heap-allocated envelope closure per delivery), kept here verbatim
//      as the baseline the ISSUE's ≥5x criterion is judged against;
//   2. market_substrate_roundtrip — the same open→submit→ack workload on
//      the interned/slab/calendar-queue MessageBus;
//   3. market_session — the full stack (MultiServerExchange, real
//      AuctionServers, escrow, settlement, audit) driven by ZI traders.
// Results go to BENCH_market_throughput.json (google-benchmark shape).
//
// A thread-scaling table (market_session at shards x threads combos,
// best-of---scale-reps each) is appended unless --scale 0; it is the
// record backing the multi-core acceptance numbers in EXPERIMENTS.md.
// Rows whose thread count exceeds the host's CPU count measure
// oversubscription, not speedup, so they are refused unless
// --allow-oversubscribed is passed (and then tagged `oversubscribed` in
// the JSON).  --assert-speedup X turns the shards=4 threads=4-vs-1 ratio
// into a hard gate (requires >= 4 real CPUs).
//
// An epoch-barrier axis (the same session with adaptive epoch windows on
// vs off, deterministic counters so one run each) is always recorded;
// --assert-barrier-reduction X gates the crossing reduction ratio.
//
// A telemetry overhead axis (market_session with the obs registry live
// versus runtime-disabled, interleaved best-of---reps) is appended unless
// --telemetry-axis 0; --assert-overhead PCT turns the measured overhead
// into a hard pass/fail gate (exit 1 above the bound).
//
// A hot-path latency gate (best-of---reps full-stack session at one
// thread, reported as session_ns_per_message) always runs;
// --assert-ns-per-message NS turns it into a hard pass/fail bound
// (exit 1 above it).
//
// Usage: market_throughput [--clients N] [--rounds R] [--shards S]
//                          [--threads T] [--drop P] [--duplicate P]
//                          [--seed S] [--json PATH] [--scale 0|1]
//                          [--scale-reps N] [--bids-axis 0|1]
//                          [--telemetry-axis 0|1] [--assert-overhead PCT]
//                          [--assert-ns-per-message NS]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/live_book.h"
#include "market/bus.h"
#include "market/clock.h"
#include "market/throughput.h"
#include "obs/metrics.h"
#include "protocols/tpd.h"

namespace legacy {

// The seed's EventQueue: a comparison heap of std::function entries.
class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule_at(fnda::SimTime at, Action action) {
    queue_.push(Entry{std::max(at, now_), next_sequence_++,
                      std::move(action)});
  }

  std::size_t run(std::size_t max_events = 1'000'000) {
    std::size_t executed = 0;
    while (executed < max_events && !queue_.empty()) {
      Entry entry = queue_.top();
      queue_.pop();
      now_ = entry.at;
      entry.action();
      ++executed;
    }
    return executed;
  }

  fnda::SimTime now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    fnda::SimTime at;
    std::uint64_t sequence;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return b.at < a.at;
      return b.sequence < a.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  fnda::SimTime now_{};
  std::uint64_t next_sequence_ = 0;
};

// The seed's bus: string-keyed endpoint map, one heap-allocated envelope
// closure per scheduled delivery.
struct Envelope {
  std::uint64_t id = 0;
  std::string from;
  std::string to;
  fnda::SimTime sent_at;
  fnda::SimTime delivered_at;
  fnda::Message payload;
};

class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Envelope& envelope) = 0;
};

class MessageBus {
 public:
  MessageBus(EventQueue& queue, fnda::BusConfig config, fnda::Rng rng)
      : queue_(queue), config_(config), rng_(rng) {}

  void attach(const std::string& address, Endpoint& endpoint) {
    endpoints_[address] = &endpoint;
  }

  std::uint64_t send(const std::string& from, const std::string& to,
                     fnda::Message payload) {
    const std::uint64_t id = next_message_++;
    ++sent_;
    Envelope envelope;
    envelope.id = id;
    envelope.from = from;
    envelope.to = to;
    envelope.sent_at = queue_.now();
    envelope.payload = std::move(payload);
    if (rng_.bernoulli(config_.drop_probability)) return id;
    schedule_delivery(envelope);
    if (rng_.bernoulli(config_.duplicate_probability)) {
      schedule_delivery(envelope);
    }
    return id;
  }

  std::size_t sent() const { return sent_; }
  std::size_t delivered() const { return delivered_; }

 private:
  void schedule_delivery(Envelope envelope) {
    fnda::SimTime latency = config_.base_latency;
    if (config_.jitter.micros > 0) {
      latency.micros += rng_.uniform_int(0, config_.jitter.micros - 1);
    }
    const fnda::SimTime deliver_at = queue_.now() + latency;
    queue_.schedule_at(deliver_at, [this, envelope = std::move(envelope),
                                    deliver_at]() mutable {
      auto it = endpoints_.find(envelope.to);
      if (it == endpoints_.end()) return;
      envelope.delivered_at = deliver_at;
      ++delivered_;
      it->second->on_message(envelope);
    });
  }

  EventQueue& queue_;
  fnda::BusConfig config_;
  fnda::Rng rng_;
  std::unordered_map<std::string, Endpoint*> endpoints_;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
  std::uint64_t next_message_ = 0;
};

}  // namespace legacy

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Open→submit→ack round-trip workload, pre-change substrate.

struct LegacyPingServer : legacy::Endpoint {
  legacy::MessageBus* bus = nullptr;
  std::string address;
  void on_message(const legacy::Envelope& e) override {
    if (const auto* msg = std::get_if<fnda::SubmitBidMsg>(&e.payload)) {
      bus->send(address, e.from,
                fnda::BidAckMsg{msg->round, msg->identity, true, ""});
    }
  }
};

struct LegacyPingClient : legacy::Endpoint {
  legacy::MessageBus* bus = nullptr;
  std::string address;
  std::string server;
  std::uint64_t identity = 0;
  void on_message(const legacy::Envelope& e) override {
    if (const auto* msg = std::get_if<fnda::RoundOpenMsg>(&e.payload)) {
      bus->send(address, server,
                fnda::SubmitBidMsg{msg->round, fnda::IdentityId{identity},
                                   fnda::Side::kBuyer,
                                   fnda::Money::from_units(42)});
    }
  }
};

struct RoundtripTiming {
  std::size_t messages = 0;
  double elapsed = 0.0;
};

RoundtripTiming run_legacy_roundtrips(std::size_t clients,
                                      std::size_t rounds,
                                      std::uint64_t seed) {
  legacy::EventQueue queue;
  legacy::MessageBus bus(queue, fnda::BusConfig{}, fnda::Rng(seed));

  LegacyPingServer server;
  server.bus = &bus;
  server.address = "exchange";
  bus.attach(server.address, server);

  std::vector<std::unique_ptr<LegacyPingClient>> endpoints;
  endpoints.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    auto client = std::make_unique<LegacyPingClient>();
    client->bus = &bus;
    client->address = "trader-" + std::to_string(i);
    client->server = server.address;
    client->identity = i;
    bus.attach(client->address, *client);
    endpoints.push_back(std::move(client));
  }

  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& client : endpoints) {
      bus.send(server.address, client->address,
               fnda::RoundOpenMsg{fnda::RoundId{r}, queue.now()});
    }
    while (queue.run() > 0) {
    }
  }
  return RoundtripTiming{bus.sent(), seconds_since(start)};
}

// ---------------------------------------------------------------------------
// The same workload on the interned/slab/calendar-queue substrate.

struct FastPingServer : fnda::Endpoint {
  fnda::MessageBus* bus = nullptr;
  fnda::AddressId address;
  void on_message(const fnda::Envelope& e) override {
    if (const auto* msg = std::get_if<fnda::SubmitBidMsg>(&e.payload)) {
      bus->send(address, e.from,
                fnda::BidAckMsg{msg->round, msg->identity, true, ""});
    }
  }
};

struct FastPingClient : fnda::Endpoint {
  fnda::MessageBus* bus = nullptr;
  fnda::AddressId address;
  fnda::AddressId server;
  std::uint64_t identity = 0;
  void on_message(const fnda::Envelope& e) override {
    if (const auto* msg = std::get_if<fnda::RoundOpenMsg>(&e.payload)) {
      bus->send(address, server,
                fnda::SubmitBidMsg{msg->round, fnda::IdentityId{identity},
                                   fnda::Side::kBuyer,
                                   fnda::Money::from_units(42)});
    }
  }
};

RoundtripTiming run_fast_roundtrips(std::size_t clients, std::size_t rounds,
                                    std::uint64_t seed) {
  fnda::EventQueue queue;
  fnda::MessageBus bus(queue, fnda::BusConfig{}, fnda::Rng(seed));

  FastPingServer server;
  server.bus = &bus;
  server.address = bus.attach("exchange", server);

  std::vector<std::unique_ptr<FastPingClient>> endpoints;
  endpoints.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    auto client = std::make_unique<FastPingClient>();
    client->bus = &bus;
    client->address = bus.attach("trader-" + std::to_string(i), *client);
    client->server = server.address;
    client->identity = i;
    endpoints.push_back(std::move(client));
  }

  const auto start = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& client : endpoints) {
      bus.send(server.address, client->address,
               fnda::RoundOpenMsg{fnda::RoundId{r}, queue.now()});
    }
    while (queue.run() > 0) {
    }
  }
  return RoundtripTiming{bus.stats().sent, seconds_since(start)};
}

// ---------------------------------------------------------------------------
// Round-clearing microbench: the close-time cost of ranking+clearing one
// round of B bids, sort-at-close (OrderBook -> SortedBook::rebuild ->
// clear_sorted) vs incremental (LiveBook galloping inserts during the
// round, finalize_ties + emit + clear_sorted at close).  Both paths are
// bit-identical in outcome; what differs is WHERE the ranking work sits:
// the live path moves it onto the submission path and leaves zero sort
// work at close, which is the latency-critical step of a call market.

struct ClearTiming {
  double seed_close = 0.0;   // rebuild + clear, per-round seconds summed
  double live_submit = 0.0;  // galloping inserts, per-round seconds summed
  double live_close = 0.0;   // finalize + emit + clear
  std::size_t iterations = 0;
  std::size_t trades = 0;  // sink so the clears cannot be optimized out
  fnda::LiveBookStats book;
};

ClearTiming run_clear_microbench(const fnda::DoubleAuctionProtocol& protocol,
                                 std::size_t bids, std::uint64_t seed) {
  const std::size_t buyers = bids / 2;
  const std::size_t sellers = bids - buyers;
  fnda::Rng setup(seed ^ 0xc1ea7);
  struct Arrival {
    fnda::Side side;
    fnda::IdentityId identity;
    fnda::Money value;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(bids);
  for (std::size_t i = 0; i < buyers; ++i) {
    arrivals.push_back({fnda::Side::kBuyer, fnda::IdentityId{i},
                        fnda::Money::from_units(
                            static_cast<std::int64_t>(setup.below(100)) + 1)});
  }
  for (std::size_t j = 0; j < sellers; ++j) {
    arrivals.push_back({fnda::Side::kSeller, fnda::IdentityId{1'000'000 + j},
                        fnda::Money::from_units(
                            static_cast<std::int64_t>(setup.below(100)) + 1)});
  }
  setup.shuffle(arrivals.begin(), arrivals.end());

  const fnda::ValueDomain domain{fnda::Money::from_units(0),
                                 fnda::Money::from_units(200)};
  fnda::OrderBook raw(domain);
  for (const Arrival& a : arrivals) raw.add(a.side, a.identity, a.value);

  ClearTiming timing;
  timing.iterations = std::max<std::size_t>(8, 65'536 / std::max<std::size_t>(
                                                            bids, 1));
  fnda::SortedBook sorted;   // reused: steady-state buffers on both paths
  fnda::LiveBook live(domain);
  for (std::size_t iter = 0; iter < timing.iterations; ++iter) {
    const std::uint64_t round_seed = seed + iter;
    {
      fnda::Rng rng(round_seed);
      const auto start = Clock::now();
      sorted.rebuild(raw, rng);
      const fnda::Outcome outcome = protocol.clear_sorted(sorted, rng);
      timing.seed_close += seconds_since(start);
      timing.trades += outcome.trade_count();
    }
    {
      fnda::Rng rng(round_seed);
      live.reset(domain);
      const auto submit_start = Clock::now();
      for (const Arrival& a : arrivals) live.add(a.side, a.identity, a.value);
      const auto close_start = Clock::now();
      timing.live_submit = timing.live_submit +
                           std::chrono::duration<double>(close_start -
                                                         submit_start)
                               .count();
      live.finalize_ties(rng);
      live.emit(sorted);
      const fnda::Outcome outcome = protocol.clear_sorted(sorted, rng);
      timing.live_close += seconds_since(close_start);
      timing.trades -= outcome.trade_count();  // identical paths -> net 0
    }
  }
  timing.book = live.stats();
  return timing;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--clients N] [--rounds R] [--shards S] [--threads T]\n"
               "       [--reps N] [--drop P] [--duplicate P] [--seed S]\n"
               "       [--json PATH] [--scale 0|1] [--scale-reps N]\n"
               "       [--bids-axis 0|1] [--telemetry-axis 0|1]\n"
               "       [--adaptive 0|1] [--allow-oversubscribed]\n"
               "       [--assert-overhead PCT] [--assert-ns-per-message NS]\n"
               "       [--assert-speedup X] [--assert-barrier-reduction X]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 10'000;
  std::size_t rounds = 5;
  std::size_t shards = 4;
  std::size_t threads = 1;
  std::size_t reps = 5;
  bool scale_table = true;
  bool bids_axis = true;
  std::size_t scale_reps = 9;
  bool telemetry_axis = true;
  double assert_overhead = -1.0;        // < 0 disables the assertion
  double assert_ns_per_message = -1.0;  // < 0 disables the gate
  double assert_speedup = -1.0;         // < 0 disables the gate
  double assert_barrier_reduction = -1.0;  // < 0 disables the gate
  bool adaptive = true;
  bool allow_oversubscribed = false;
  double drop = 0.0;
  double duplicate = 0.0;
  std::uint64_t seed = 1;
  std::string json_path = "BENCH_market_throughput.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--clients" && (value = next())) {
      clients = std::stoull(value);
    } else if (arg == "--rounds" && (value = next())) {
      rounds = std::stoull(value);
    } else if (arg == "--shards" && (value = next())) {
      shards = std::stoull(value);
    } else if (arg == "--threads" && (value = next())) {
      threads = std::stoull(value);
    } else if (arg == "--reps" && (value = next())) {
      reps = std::max<std::size_t>(1, std::stoull(value));
    } else if (arg == "--scale" && (value = next())) {
      scale_table = std::stoull(value) != 0;
    } else if (arg == "--bids-axis" && (value = next())) {
      bids_axis = std::stoull(value) != 0;
    } else if (arg == "--telemetry-axis" && (value = next())) {
      telemetry_axis = std::stoull(value) != 0;
    } else if (arg == "--assert-overhead" && (value = next())) {
      assert_overhead = std::stod(value);
    } else if (arg == "--assert-ns-per-message" && (value = next())) {
      assert_ns_per_message = std::stod(value);
    } else if (arg == "--assert-speedup" && (value = next())) {
      assert_speedup = std::stod(value);
    } else if (arg == "--assert-barrier-reduction" && (value = next())) {
      assert_barrier_reduction = std::stod(value);
    } else if (arg == "--adaptive" && (value = next())) {
      adaptive = std::stoull(value) != 0;
    } else if (arg == "--allow-oversubscribed") {
      allow_oversubscribed = true;
    } else if (arg == "--scale-reps" && (value = next())) {
      scale_reps = std::max<std::size_t>(1, std::stoull(value));
    } else if (arg == "--drop" && (value = next())) {
      drop = std::stod(value);
    } else if (arg == "--duplicate" && (value = next())) {
      duplicate = std::stod(value);
    } else if (arg == "--json" && (value = next())) {
      json_path = value;
    } else if (arg == "--seed" && (value = next())) {
      seed = std::stoull(value);
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<fnda::bench::JsonBenchRecord> records;
  const std::string size_suffix = "/" + std::to_string(clients);

  // Host caveats ride inside every JSON record (a row pasted into a
  // report keeps its caveat), not just on stderr.
  const unsigned num_cpus =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::string> host_warnings;
  if (num_cpus <= 1) {
    host_warnings.push_back(
        "single-cpu host: multi-thread rows measure oversubscription, not "
        "parallel speedup; treat them as lower bounds and compare across "
        "hosts via num_cpus");
    std::cerr << "WARNING: this host exposes a single CPU; the thread-"
                 "scaling table measures\n"
                 "WARNING: oversubscription, not parallel speedup.  Treat "
                 "multi-thread rows as\n"
                 "WARNING: lower bounds and compare across hosts via "
                 "num_cpus in the JSON.\n";
  }

  // Best-of-reps for both substrates: the workload is deterministic, so
  // repetition only filters out scheduler noise, never workload variance.
  RoundtripTiming before = run_legacy_roundtrips(clients, rounds, seed);
  for (std::size_t rep = 1; rep < reps; ++rep) {
    const RoundtripTiming timing = run_legacy_roundtrips(clients, rounds, seed);
    if (timing.elapsed < before.elapsed) before = timing;
  }
  const double before_rate =
      static_cast<double>(before.messages) / before.elapsed;
  records.push_back({"legacy_substrate_roundtrip" + size_suffix,
                     before.elapsed * 1e9,
                     1,
                     before_rate,
                     {{"messages", static_cast<double>(before.messages)}}});
  std::cout << "legacy substrate:  " << before.messages << " messages in "
            << before.elapsed << " s  (" << before_rate << " msg/s)\n";

  RoundtripTiming after = run_fast_roundtrips(clients, rounds, seed);
  for (std::size_t rep = 1; rep < reps; ++rep) {
    const RoundtripTiming timing = run_fast_roundtrips(clients, rounds, seed);
    if (timing.elapsed < after.elapsed) after = timing;
  }
  const double after_rate = static_cast<double>(after.messages) / after.elapsed;
  records.push_back({"market_substrate_roundtrip" + size_suffix,
                     after.elapsed * 1e9,
                     1,
                     after_rate,
                     {{"messages", static_cast<double>(after.messages)}}});
  std::cout << "market substrate:  " << after.messages << " messages in "
            << after.elapsed << " s  (" << after_rate << " msg/s, "
            << after_rate / before_rate << "x)\n";

  // Full stack: real servers, escrow, settlement, audit, ZI traders.
  fnda::TpdProtocol protocol(fnda::Money::from_units(50));
  fnda::ThroughputConfig session;
  session.clients = clients;
  session.rounds = rounds;
  session.shards = shards;
  session.threads = threads;
  session.drop_probability = drop;
  session.duplicate_probability = duplicate;
  session.seed = seed;
  session.adaptive = adaptive;

  const auto start = Clock::now();
  const fnda::ThroughputResult result =
      fnda::run_throughput_session(protocol, session);
  const double elapsed = seconds_since(start);

  const double messages_per_second =
      static_cast<double>(result.bus.sent) / elapsed;
  records.push_back(
      {"market_session" + size_suffix,
       elapsed * 1e9,
       1,
       messages_per_second,
       {{"messages", static_cast<double>(result.bus.sent)},
        {"bids_per_second",
         static_cast<double>(result.bids_accepted) / elapsed},
        {"rounds_per_second",
         static_cast<double>(result.rounds * result.shards) / elapsed},
        {"trades", static_cast<double>(result.trades)},
        {"shards", static_cast<double>(result.shards)},
        {"threads", static_cast<double>(result.threads)},
        {"adaptive", adaptive ? 1.0 : 0.0},
        {"epoch_epochs", static_cast<double>(result.epoch.epochs)},
        {"epoch_barriers", static_cast<double>(result.epoch.barriers)},
        {"epoch_widened", static_cast<double>(result.epoch.widened)}}});
  std::cout << "full session:      " << result.bus.sent << " messages, "
            << result.bids_accepted << " bids, " << result.trades
            << " trades across " << result.shards << " shards on "
            << result.threads << " thread(s) in " << elapsed << " s  ("
            << messages_per_second << " msg/s; " << result.epoch.barriers
            << " epoch barriers over " << result.epoch.epochs
            << " epochs, adaptive " << (adaptive ? "on" : "off") << ")\n";
  for (std::size_t s = 0; s < result.shard_bus.size(); ++s) {
    const fnda::BusStats& stats = result.shard_bus[s];
    std::cout << "  shard " << s << ": delivered " << stats.delivered
              << ", dead-lettered " << stats.dead_lettered << ", dropped "
              << stats.dropped << '\n';
  }
  std::cout << "  book: " << result.book.inserts << " inserts, "
            << result.book.entries_shifted << " entries shifted, "
            << result.book.chunk_splits << " chunk splits, "
            << result.book.tie_entries_permuted << " tie-permuted, "
            << result.book.rounds_finalized << " rounds finalized, "
            << result.book.sorts_at_close << " sorts at close\n";

  // Hot-path latency gate: the full-stack session pinned to one thread,
  // best of --reps (the workload is deterministic; repetition filters
  // scheduler noise).  One thread makes the number a per-message cost of
  // the serial hot path rather than a parallelism measurement, so it is
  // comparable across hosts and CI runners.
  {
    fnda::ThroughputConfig gate = session;
    gate.threads = 1;
    double gate_best = 0.0;
    std::uint64_t gate_messages = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto gate_start = Clock::now();
      const fnda::ThroughputResult sample =
          fnda::run_throughput_session(protocol, gate);
      const double rate =
          static_cast<double>(sample.bus.sent) / seconds_since(gate_start);
      if (rate > gate_best) gate_best = rate;
      gate_messages = sample.bus.sent;
    }
    const double ns_per_message = 1e9 / gate_best;
    records.push_back(
        {"session_ns_per_message" + size_suffix,
         ns_per_message,
         gate_messages,
         gate_best,
         {{"messages", static_cast<double>(gate_messages)},
          {"threads", 1.0},
          {"shards", static_cast<double>(gate.shards)}}});
    std::cout << "hot-path gate:     " << ns_per_message
              << " ns/message (1 thread, best of " << reps << ")\n";
    if (assert_ns_per_message >= 0.0 &&
        ns_per_message > assert_ns_per_message) {
      std::cerr << "session hot path " << ns_per_message
                << " ns/message exceeds the asserted bound of "
                << assert_ns_per_message << " ns\n";
      return 1;
    }
  }

  {
    // Epoch-barrier axis: the headline workload with adaptive lookahead
    // batching on versus off.  Barrier counts are deterministic functions
    // of the workload (thread- and wallclock-invariant), so one run per
    // arm suffices; one thread keeps the runs cheap.
    fnda::ThroughputConfig arm = session;
    arm.threads = 1;
    fnda::ThroughputResult arms[2];
    for (const bool on : {false, true}) {
      arm.adaptive = on;
      arms[on] = fnda::run_throughput_session(protocol, arm);
    }
    const double off_barriers = static_cast<double>(arms[0].epoch.barriers);
    const double on_barriers =
        static_cast<double>(std::max<std::size_t>(arms[1].epoch.barriers, 1));
    const double reduction = off_barriers / on_barriers;
    for (const bool on : {false, true}) {
      const fnda::ThroughputResult& sample = arms[on];
      fnda::bench::JsonBenchRecord record{
          std::string("epoch_barriers/adaptive:") + (on ? "on" : "off") +
              size_suffix,
          static_cast<double>(sample.epoch.barriers),
          1,
          0.0,
          {{"epoch_epochs", static_cast<double>(sample.epoch.epochs)},
           {"epoch_barriers", static_cast<double>(sample.epoch.barriers)},
           {"epoch_widened", static_cast<double>(sample.epoch.widened)},
           {"epoch_injected", static_cast<double>(sample.epoch.injected)},
           {"shards", static_cast<double>(arm.shards)}},
          {}};
      if (on) record.counters.emplace_back("barrier_reduction", reduction);
      records.push_back(std::move(record));
    }
    std::cout << "epoch barriers:    adaptive off " << arms[0].epoch.barriers
              << ", adaptive on " << arms[1].epoch.barriers << " (x"
              << reduction << " fewer crossings)\n";
    if (assert_barrier_reduction >= 0.0 &&
        reduction < assert_barrier_reduction) {
      std::cerr << "epoch barrier reduction x" << reduction
                << " is below the asserted bound of x"
                << assert_barrier_reduction << '\n';
      return 1;
    }
  }

  if (bids_axis) {
    // Bids-per-round scaling axis: one shard, one thread, so the book
    // size per round IS the client count; rounds scale inversely to keep
    // total work comparable across sizes.
    std::cout << "bids-per-round axis (1 shard, best of " << reps << "):\n";
    for (const std::size_t bids :
         {std::size_t{16}, std::size_t{256}, std::size_t{4096}}) {
      fnda::ThroughputConfig axis = session;
      axis.clients = bids;
      axis.shards = 1;
      axis.threads = 1;
      axis.rounds = std::max<std::size_t>(2, 8192 / bids);
      double best_rate = 0.0;
      fnda::ThroughputResult sample;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto axis_start = Clock::now();
        sample = fnda::run_throughput_session(protocol, axis);
        const double axis_elapsed = seconds_since(axis_start);
        const double rate =
            static_cast<double>(sample.bids_accepted) / axis_elapsed;
        if (rate > best_rate) best_rate = rate;
      }
      records.push_back(
          {"market_session_bids/" + std::to_string(bids),
           static_cast<double>(sample.bids_accepted) / best_rate * 1e9,
           1,
           best_rate,
           {{"bids_per_round", static_cast<double>(bids)},
            {"rounds", static_cast<double>(sample.rounds)},
            {"inserts", static_cast<double>(sample.book.inserts)},
            {"entries_shifted",
             static_cast<double>(sample.book.entries_shifted)},
            {"chunk_splits", static_cast<double>(sample.book.chunk_splits)},
            {"sorts_at_close",
             static_cast<double>(sample.book.sorts_at_close)}}});
      std::cout << "  " << bids << " bids/round x " << sample.rounds
                << " rounds: " << best_rate << " bids/s, "
                << (static_cast<double>(sample.book.entries_shifted) /
                    static_cast<double>(std::max<std::uint64_t>(
                        sample.book.inserts, 1)))
                << " shifted/insert, sorts at close "
                << sample.book.sorts_at_close << '\n';
    }

    // Close-time microbench: what the incremental book deletes from the
    // round-close step, at the same three book sizes.
    std::cout << "round-clearing microbench (close-time cost per round):\n";
    for (const std::size_t bids :
         {std::size_t{16}, std::size_t{256}, std::size_t{4096}}) {
      const ClearTiming timing = run_clear_microbench(protocol, bids, seed);
      const double iters = static_cast<double>(timing.iterations);
      const double seed_ns = timing.seed_close / iters * 1e9;
      const double live_ns = timing.live_close / iters * 1e9;
      const double submit_ns = timing.live_submit / iters * 1e9;
      records.push_back(
          {"round_clear_sorted/" + std::to_string(bids),
           seed_ns,
           timing.iterations,
           static_cast<double>(bids) * iters / timing.seed_close,
           {{"bids_per_round", static_cast<double>(bids)}}});
      records.push_back(
          {"round_clear_live/" + std::to_string(bids),
           live_ns,
           timing.iterations,
           static_cast<double>(bids) * iters / timing.live_close,
           {{"bids_per_round", static_cast<double>(bids)},
            {"submit_ns_per_round", submit_ns},
            {"close_speedup", seed_ns / live_ns},
            {"sorts_at_close",
             static_cast<double>(timing.book.sorts_at_close)}}});
      std::cout << "  " << bids << " bids: sort-at-close " << seed_ns
                << " ns/round, live close " << live_ns
                << " ns/round (x" << seed_ns / live_ns << "), live submit "
                << submit_ns << " ns/round, outcome delta "
                << timing.trades << '\n';
    }
  }

  bool scale_rows_oversubscribed = false;
  double scale_speedup_4 = -1.0;  // shards=4: threads=4 vs threads=1
  if (scale_table) {
    // Thread-scaling table: one-thread baseline per shard count, plus the
    // matched shards==threads run.  Best-of-N (the workload is
    // deterministic, so repetition only filters scheduler noise).
    //
    // A row whose thread count exceeds the host CPU count cannot measure
    // parallel speedup — the workers time-slice one core — so it is
    // refused outright unless --allow-oversubscribed opted in, and an
    // allowed row is tagged so downstream reports cannot mistake it for a
    // clean measurement.
    std::cout << "thread scaling (best of " << scale_reps << "):\n";
    double baseline_for_shards = 0.0;
    for (const std::size_t shard_count : {std::size_t{1}, std::size_t{2},
                                          std::size_t{4}, std::size_t{8}}) {
      for (const std::size_t thread_count :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        if (thread_count > shard_count) continue;
        if (thread_count != 1 && thread_count != shard_count) continue;
        const bool oversubscribed = thread_count > num_cpus;
        if (oversubscribed && !allow_oversubscribed) {
          std::cout << "  shards " << shard_count << " threads "
                    << thread_count << ": refused (host has " << num_cpus
                    << " CPU(s); pass --allow-oversubscribed to record "
                       "anyway)\n";
          continue;
        }
        fnda::ThroughputConfig combo = session;
        combo.shards = shard_count;
        combo.threads = thread_count;
        double best = 0.0;
        fnda::ThroughputResult sample;
        for (std::size_t rep = 0; rep < scale_reps; ++rep) {
          const auto rep_start = Clock::now();
          sample = fnda::run_throughput_session(protocol, combo);
          const double rep_elapsed = seconds_since(rep_start);
          const double rate = static_cast<double>(sample.bus.sent) /
                              rep_elapsed;
          if (rate > best) best = rate;
        }
        const std::string name = "market_session" + size_suffix + "/shards:" +
                                 std::to_string(shard_count) + "/threads:" +
                                 std::to_string(thread_count);
        fnda::bench::JsonBenchRecord record{
            name,
            static_cast<double>(sample.bus.sent) / best * 1e9,
            1,
            best,
            {{"messages", static_cast<double>(sample.bus.sent)},
             {"shards", static_cast<double>(shard_count)},
             {"threads", static_cast<double>(thread_count)},
             {"oversubscribed", oversubscribed ? 1.0 : 0.0}},
            {}};
        if (thread_count == 1) baseline_for_shards = best;
        double speedup = 0.0;
        if (thread_count > 1 && baseline_for_shards > 0.0) {
          speedup = best / baseline_for_shards;
          record.counters.emplace_back("speedup_vs_1thread", speedup);
          if (shard_count == 4 && thread_count == 4) {
            scale_speedup_4 = speedup;
            if (oversubscribed) scale_rows_oversubscribed = true;
          }
        }
        if (oversubscribed) {
          record.warnings.push_back(
              "oversubscribed: " + std::to_string(thread_count) +
              " worker threads on a " + std::to_string(num_cpus) +
              "-CPU host; this row is not a parallel-speedup measurement");
        }
        records.push_back(std::move(record));
        std::cout << "  shards " << shard_count << " threads " << thread_count
                  << ": " << best << " msg/s";
        if (speedup > 0.0) std::cout << " (x" << speedup << " vs 1 thread)";
        if (oversubscribed) std::cout << " [oversubscribed]";
        std::cout << '\n';
      }
    }
  }
  if (assert_speedup >= 0.0) {
    if (scale_speedup_4 < 0.0) {
      std::cerr << "--assert-speedup needs the --scale table's shards=4 "
                   "threads=1 and threads=4 rows (table disabled or rows "
                   "refused on this host)\n";
      return 1;
    }
    if (scale_rows_oversubscribed) {
      std::cerr << "refusing to assert speedup: the shards=4 threads=4 row "
                   "is oversubscribed on this " << num_cpus
                << "-CPU host, so the ratio does not measure parallel "
                   "speedup\n";
      return 1;
    }
    if (scale_speedup_4 < assert_speedup) {
      std::cerr << "multi-core speedup x" << scale_speedup_4
                << " (shards=4, threads=4 vs 1) is below the asserted "
                   "bound of x" << assert_speedup << '\n';
      return 1;
    }
    std::cout << "speedup gate:      x" << scale_speedup_4 << " >= x"
              << assert_speedup << " (shards=4, threads=4 vs 1)\n";
  }

  if (telemetry_axis) {
    // Telemetry overhead axis: the identical full-stack session with the
    // registry/trace instruments live versus runtime-disabled.  Reps are
    // interleaved so thermal and scheduler drift hit both arms equally.
    fnda::ThroughputConfig with_telemetry = session;
    with_telemetry.telemetry.enabled = true;
    // Longer sessions than the headline run: each arm must be long
    // enough that scheduler bursts on a shared host average out, or the
    // per-run noise swamps a sub-percent effect.
    with_telemetry.rounds = session.rounds * 4;
    fnda::ThroughputConfig without_telemetry = with_telemetry;
    without_telemetry.telemetry.enabled = false;
    double best_on = 0.0;
    double best_off = 0.0;
    std::uint64_t session_messages = 0;
    std::vector<double> paired_ratios;
    paired_ratios.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // The two arms of a rep run back to back (alternating which goes
      // first), so each pair shares thermal/frequency state; the median
      // of the paired off/on ratios cancels the machine drift that
      // dwarfs a sub-percent overhead in absolute rates.
      double on_rate = 0.0;
      double off_rate = 0.0;
      for (const bool on_arm : {rep % 2 == 0, rep % 2 != 0}) {
        const auto rep_start = Clock::now();
        const fnda::ThroughputResult sample = fnda::run_throughput_session(
            protocol, on_arm ? with_telemetry : without_telemetry);
        const double rate =
            static_cast<double>(sample.bus.sent) / seconds_since(rep_start);
        if (on_arm) {
          on_rate = rate;
          if (rate > best_on) best_on = rate;
          session_messages = sample.bus.sent;
        } else {
          off_rate = rate;
          if (rate > best_off) best_off = rate;
        }
      }
      paired_ratios.push_back(off_rate / on_rate);
    }
    std::sort(paired_ratios.begin(), paired_ratios.end());
    const double ab_overhead_pct =
        (paired_ratios[paired_ratios.size() / 2] - 1.0) * 100.0;

    // Direct hot-path cost: the exact instrument sequence deliver_group
    // runs per delivered group (sample tick + modulo, and for every
    // stride-th group one batch-size record plus one latency record per
    // envelope), timed over a synthetic delivery stream.  The session
    // A/B above is reported for context but NOT gated on: swapping which
    // arm allocates telemetry shifts heap layout enough to swing the
    // paired medians by +-3-5% on this workload even when both arms
    // record nothing, which buries a sub-percent effect.  This absolute
    // per-group cost against the session's per-message budget is immune
    // to that, so it carries --assert-overhead.
    fnda::obs::Histogram batch_hist;
    fnda::obs::Histogram latency_hist;
    constexpr std::size_t kGroups = std::size_t{1} << 22;
    constexpr std::uint64_t kStride = 16;  // mirrors MessageBus's stride
    constexpr std::size_t sizes[8] = {1, 1, 1, 1, 2, 1, 1, 3};
    constexpr std::int64_t lats[8] = {2, 7, 31, 3, 120, 15, 1, 64};
    std::uint64_t tick = 0;
    const auto micro_start = Clock::now();
    for (std::size_t g = 0; g < kGroups; ++g) {
      const std::size_t group_size = sizes[g & 7];
      if (tick++ % kStride == 0) {
        batch_hist.record(static_cast<std::int64_t>(group_size));
        for (std::size_t e = 0; e < group_size; ++e) {
          latency_hist.record(lats[(g + e) & 7]);
        }
      }
    }
    const double micro_elapsed = seconds_since(micro_start);
    if (batch_hist.count() > kGroups) return 1;  // observe the state
    const double instrument_ns_per_group =
        micro_elapsed / static_cast<double>(kGroups) * 1e9;
    // Budget from the fastest observed instrumented rate (smallest
    // budget -> most conservative gate); groups <= messages, so charging
    // the per-group cost to every message overstates the overhead.
    const double session_ns_per_message = 1e9 / best_on;
    const double hot_overhead_pct =
        instrument_ns_per_group / session_ns_per_message * 100.0;

    records.push_back(
        {"market_session_telemetry/off" + size_suffix,
         static_cast<double>(session_messages) / best_off * 1e9,
         1,
         best_off,
         {{"messages", static_cast<double>(session_messages)}}});
    records.push_back(
        {"market_session_telemetry/on" + size_suffix,
         static_cast<double>(session_messages) / best_on * 1e9,
         1,
         best_on,
         {{"messages", static_cast<double>(session_messages)},
          {"ab_overhead_pct", ab_overhead_pct}}});
    records.push_back(
        {"telemetry_hot_path",
         instrument_ns_per_group,
         kGroups,
         1e9 / instrument_ns_per_group,
         {{"ns_per_group", instrument_ns_per_group},
          {"session_ns_per_message", session_ns_per_message},
          {"overhead_pct", hot_overhead_pct}}});
    std::cout << "telemetry session A/B (median of " << reps
              << " paired reps): off " << best_off << " msg/s, on " << best_on
              << " msg/s, delta " << ab_overhead_pct << "%\n";
    std::cout << "telemetry hot path: " << instrument_ns_per_group
              << " ns/group vs " << session_ns_per_message
              << " ns/message budget -> " << hot_overhead_pct
              << "% overhead\n";
    if (assert_overhead >= 0.0 && hot_overhead_pct > assert_overhead) {
      std::cerr << "telemetry hot-path overhead " << hot_overhead_pct
                << "% exceeds the asserted bound of " << assert_overhead
                << "%\n";
      return 1;
    }
  }

  for (fnda::bench::JsonBenchRecord& record : records) {
    record.warnings.insert(record.warnings.begin(), host_warnings.begin(),
                           host_warnings.end());
  }
  if (!fnda::bench::write_benchmark_json_file(json_path, argv[0], records)) {
    std::cerr << "failed to write " << json_path << '\n';
    return 1;
  }
  std::cout << "wrote " << json_path << '\n';
  return 0;
}
