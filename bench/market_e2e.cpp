// Ablation D: full exchange rounds over the message bus with a mix of
// honest traders and false-name attackers, PMD vs TPD.
//
// Measures settlement-truth outcomes: realized trader surplus, attacker
// gain over truthful play, and confiscated deposits.  The qualitative
// claim being checked: under PMD the attacks pay; under TPD they do not.
#include <iostream>

#include "common/statistics.h"
#include "market/exchange.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"
#include "sim/table.h"

namespace {

using namespace fnda;

struct RoundStats {
  double attacker_utility = 0.0;
  double honest_surplus = 0.0;
  double confiscated = 0.0;
  double trades = 0.0;
};

/// One exchange round with `size` honest traders per side (values
/// U[0,100]) plus one seller-role attacker.  When `attack` is set the
/// attacker adds a false-name buyer bid just above the expected clearing
/// price (the Example 1 pattern); otherwise it plays truthfully.
RoundStats run_round(const DoubleAuctionProtocol& protocol, bool attack,
                     std::uint64_t seed) {
  ExchangeConfig config;
  config.seed = seed;
  ExchangeSimulation exchange(protocol, config);
  Rng rng(seed * 977 + 1);

  constexpr std::size_t kSize = 20;
  for (std::size_t i = 0; i < kSize; ++i) {
    exchange.add_trader(Side::kBuyer, rng.uniform_money(Money::from_units(0),
                                                        Money::from_units(100)));
    exchange.add_trader(Side::kSeller, rng.uniform_money(Money::from_units(0),
                                                         Money::from_units(100)));
  }
  // Attacker: a seller with a mid-range value, trading in most draws.
  TradingClient& attacker = exchange.add_trader(Side::kSeller, money(30));
  if (attack) {
    Strategy strategy;
    strategy.declarations = {Declaration{Side::kSeller, money(30)},
                             Declaration{Side::kBuyer, money(55)}};
    attacker.set_strategy(strategy);
  }

  exchange.run_round();

  RoundStats stats;
  stats.attacker_utility = exchange.settled_utility(attacker);
  for (const auto& trader : exchange.traders()) {
    if (trader.get() == &attacker) continue;
    stats.honest_surplus += exchange.settled_utility(*trader);
  }
  const RoundId round{0};
  if (const auto* settlement = exchange.server().settlement_of(round)) {
    stats.confiscated = settlement->confiscated_total.to_double();
  }
  if (const auto* outcome = exchange.server().outcome_of(round)) {
    stats.trades = static_cast<double>(outcome->trade_count());
  }
  return stats;
}

}  // namespace

int main() {
  const PmdProtocol pmd;
  const TpdProtocol tpd(money(50));

  std::cout << "== End-to-end exchange rounds: 20 honest traders/side + "
               "1 seller attacker (fake buyer bid @55), 200 paired rounds "
               "==\n";
  std::cout << "Each round runs twice with the same population: attacker "
               "truthful vs attacking; delta = u(attack) - u(truth).\n\n";
  TextTable table({"protocol", "mean delta", "max delta", "% rounds delta>0",
                   "% rounds delta<0", "honest surplus (attacked)"});

  for (const DoubleAuctionProtocol* protocol :
       {static_cast<const DoubleAuctionProtocol*>(&pmd),
        static_cast<const DoubleAuctionProtocol*>(&tpd)}) {
    RunningStats delta, surplus;
    int gains = 0;
    int losses = 0;
    constexpr int kRounds = 200;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      const std::uint64_t seed = 10'000 + round;
      const RoundStats truthful = run_round(*protocol, false, seed);
      const RoundStats attacked = run_round(*protocol, true, seed);
      const double d = attacked.attacker_utility - truthful.attacker_utility;
      delta.add(d);
      surplus.add(attacked.honest_surplus);
      if (d > 1e-9) ++gains;
      if (d < -1e-9) ++losses;
    }
    table.add_row({protocol->name(), format_fixed(delta.mean(), 3),
                   format_fixed(delta.max(), 3),
                   format_fixed(100.0 * gains / kRounds, 1) + "%",
                   format_fixed(100.0 * losses / kRounds, 1) + "%",
                   format_fixed(surplus.mean(), 1)});
  }
  std::cout << table
            << "\nExpected: under PMD the blind attack sometimes pays "
               "(delta > 0 in some rounds); under TPD it never does — "
               "sellers receive exactly r regardless, and a fake buyer "
               "bid can only cost the attacker.\n";
  return 0;
}
