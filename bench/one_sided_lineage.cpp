// The robustness lineage behind the paper (refs [8], [13], [14]):
// one-sided auctions and the exact boundary where false-name-proofness
// breaks — which is the same boundary Section 9 inherits for the
// multi-unit TPD.
#include <iostream>

#include "common/rng.h"
#include "protocols/one_sided.h"
#include "sim/table.h"

namespace {

using namespace fnda;

QuantityValuation concave(std::uint64_t id, std::vector<double> marginals) {
  QuantityValuation bid;
  bid.identity = IdentityId{id};
  bid.values.push_back(Money{});
  Money total;
  for (double m : marginals) {
    total += money(m);
    bid.values.push_back(total);
  }
  return bid;
}

void vickrey_story() {
  std::cout << "== Single-unit Vickrey: false names only hurt ==\n";
  TextTable table({"scenario", "winner pays", "attacker utility"});
  const std::vector<std::pair<IdentityId, Money>> honest = {
      {IdentityId{1}, money(10)}, {IdentityId{2}, money(7)}};
  const VickreyResult base = run_vickrey(honest);
  table.add_row({"truthful (bids 10, 7)", base.price.to_string(),
                 format_fixed(10.0 - base.price.to_double(), 1)});
  auto attacked = honest;
  attacked.push_back({IdentityId{99}, money(9)});
  const VickreyResult fake = run_vickrey(attacked);
  table.add_row({"+ winner's fake bid 9", fake.price.to_string(),
                 format_fixed(10.0 - fake.price.to_double(), 1)});
  std::cout << table << '\n';
}

void gva_boundary() {
  std::cout << "== GVA robustness boundary (SYM AAAI-99, the paper's "
               "ref [8]) ==\n";
  GeneralizedVickreyAuction gva(2);

  // Concave world: splitting never pays (spot-checked over random draws).
  Rng rng(0x6a7);
  int profitable = 0;
  constexpr int kRuns = 400;
  for (int run = 0; run < kRuns; ++run) {
    const double m1 = rng.uniform_double(10, 100);
    const double m2 = rng.uniform_double(0, m1);
    const double r1 = rng.uniform_double(0, 100);
    const double r2 = rng.uniform_double(0, r1);
    const QuantityValuation rival = concave(10, {r1, r2});
    auto utility = [&](const OneSidedResult& result, bool split) {
      std::size_t units = 0;
      double paid = 0.0;
      for (std::uint64_t id : {1ULL, 2ULL}) {
        if (const auto* award = result.award_for(IdentityId{id})) {
          units += award->units;
          paid += award->payment.to_double();
        }
        if (!split) break;
      }
      return (units >= 2 ? m1 + m2 : units == 1 ? m1 : 0.0) - paid;
    };
    const double truthful =
        utility(gva.run({concave(1, {m1, m2}), rival}), false);
    const double split =
        utility(gva.run({concave(1, {m1}), concave(2, {m2}), rival}), true);
    if (split > truthful + 1e-9) ++profitable;
  }
  std::cout << "decreasing marginals: profitable identity splits in "
            << profitable << "/" << kRuns << " random instances\n";

  // Complements: the classic counterexample.
  QuantityValuation package;
  package.identity = IdentityId{1};
  package.values = {money(0), money(0), money(100)};
  const OneSidedResult honest = gva.run({package, concave(2, {70})});
  const OneSidedResult attacked =
      gva.run({package, concave(2, {70}), concave(99, {70})});
  const auto* real = attacked.award_for(IdentityId{2});
  const auto* fake = attacked.award_for(IdentityId{99});
  std::cout << "complements (pair-bidder 100 vs single-unit 70):\n"
            << "  truthful: single-unit bidder wins "
            << (honest.award_for(IdentityId{2}) != nullptr ? 1 : 0)
            << " units -> utility 0\n"
            << "  split into two 70-bids: wins 2 units paying "
            << (real->payment + fake->payment)
            << " -> utility " << format_fixed(70.0 - 60.0, 1)
            << "  (GVA manipulated)\n\n";
  std::cout << "This is exactly why Section 9's multi-unit TPD *requires* "
               "decreasing marginal utilities: the GVA-style payments it "
               "borrows are only false-name-proof on that side of the "
               "boundary.\n";
}

}  // namespace

int main() {
  vickrey_story();
  gva_boundary();
  return 0;
}
