// The Myerson-Satterthwaite foundation (paper Section 2, ref [6]),
// mechanized.
//
// For two-point bilateral settings this bench decides — by exact linear
// feasibility over the mechanism's transfers — whether an efficient,
// dominant-strategy IC, ex-post IR mechanism exists, with and without
// budget balance, as the supports slide from disjoint to overlapping.
// It then shows the escape hatch the paper generalizes: the posted-price
// mechanism, which is exactly TPD with one buyer and one seller, and its
// efficiency cost.
#include <iostream>

#include "common/statistics.h"
#include "core/instance.h"
#include "core/surplus.h"
#include "mechanism/bilateral.h"
#include "protocols/tpd.h"
#include "sim/table.h"

namespace {

using namespace fnda;

void impossibility_grid() {
  std::cout << "== Existence of an efficient + DSIC + ex-post-IR "
               "mechanism (buyer {g, g+2}, seller {0, 2}, uniform) ==\n";
  TextTable table({"gap g", "supports", "budget balanced", "deficit allowed",
                   "verdict"});
  for (double g : {3.0, 2.5, 2.0, 1.5, 1.0, 0.5, 0.0}) {
    BilateralSetting setting;
    setting.buyer_types = {{money(g), 0.5}, {money(g + 2), 0.5}};
    setting.seller_types = {{money(0), 0.5}, {money(2), 0.5}};
    const bool overlapping = g < 2.0;

    const FeasibilityReport balanced = check_efficient_mechanism_exists(
        setting, MechanismRequirements{/*budget_balanced=*/true});
    MechanismRequirements subsidised;
    subsidised.budget_balanced = false;
    const FeasibilityReport with_subsidy =
        check_efficient_mechanism_exists(setting, subsidised);

    table.add_row({format_fixed(g, 1),
                   overlapping ? "overlapping" : "disjoint",
                   balanced.feasible ? "EXISTS" : "impossible",
                   with_subsidy.feasible ? "EXISTS" : "impossible",
                   balanced.feasible
                       ? "a posted price is efficient here"
                       : "Myerson-Satterthwaite bites"});
  }
  std::cout << table
            << "\nOnce gains from trade are uncertain (overlap), budget "
               "balance must go (VCG deficit) or efficiency must go "
               "(posted price / TPD).\n\n";
}

void posted_price_is_tpd() {
  std::cout << "== Posted price == TPD at n = m = 1 ==\n";
  // Continuous-ish uniform supports, discretised to 11 points each.
  BilateralSetting setting;
  for (int v = 0; v <= 10; ++v) {
    setting.buyer_types.push_back({money(v * 10), 1.0 / 11.0});
    setting.seller_types.push_back({money(v * 10), 1.0 / 11.0});
  }
  const PostedPriceResult analytic = optimal_posted_price(setting);
  std::cout << "analytic optimal posted price: " << analytic.price
            << ", expected surplus "
            << format_fixed(analytic.expected_surplus, 3) << " ("
            << format_fixed(100.0 * analytic.efficiency, 1)
            << "% of efficient)\n";

  // Monte-Carlo cross-check: TPD with that threshold on 1x1 markets drawn
  // from the same distribution.
  const TpdProtocol tpd(analytic.price);
  Rng rng(0xb11a);
  RunningStats tpd_surplus;
  RunningStats efficient;
  for (int run = 0; run < 200'000; ++run) {
    SingleUnitInstance instance;
    instance.buyer_values = {
        Money::from_units(10 * rng.uniform_int(0, 10))};
    instance.seller_values = {
        Money::from_units(10 * rng.uniform_int(0, 10))};
    const InstantiatedMarket market = instantiate_truthful(instance);
    Rng clear_rng = rng.split();
    const Outcome outcome = tpd.clear(market.book, clear_rng);
    tpd_surplus.add(realized_surplus(outcome, market.truth).total);
    Rng sort_rng = rng.split();
    const SortedBook sorted(market.book, sort_rng);
    efficient.add(efficient_surplus(sorted));
  }
  std::cout << "TPD(r=" << analytic.price << ") simulated:       "
            << format_fixed(tpd_surplus.mean(), 3) << " +/- "
            << format_fixed(tpd_surplus.ci95_half_width(), 3)
            << " (efficient " << format_fixed(efficient.mean(), 3) << ")\n";
  std::cout << "The bilateral analysis and the double-auction protocol "
               "agree: TPD is the posted-price mechanism scaled to many "
               "traders.\n";
}

}  // namespace

int main() {
  impossibility_grid();
  posted_price_is_tpd();
  return 0;
}
