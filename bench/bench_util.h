// Shared helpers for the table/figure reproduction binaries.
//
// Each bench prints the paper's reported numbers next to the measured
// ones so the reproduction quality is visible at a glance; EXPERIMENTS.md
// records a captured run.
#pragma once

#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "sim/table.h"

namespace fnda::bench {

/// Paper row for Tables 1/2: surplus and (ratio) for four columns.
struct PaperRow {
  int size;  // n=m for Table 1, N for Table 2
  double tpd, tpd_ratio;
  double tpd_ex, tpd_ex_ratio;
  double pmd, pmd_ratio;
  double pmd_ex, pmd_ex_ratio;
};

inline std::string measured_cell(const ComparisonResult& result,
                                 const std::string& name, bool except) {
  const ProtocolSummary& summary = result.summary(name);
  const double value =
      except ? summary.except_auctioneer.mean() : summary.total.mean();
  const double ratio = except ? result.ratio_except_auctioneer(name)
                              : result.ratio_total(name);
  return format_with_ratio(value, ratio);
}

inline std::string paper_cell(double value, double ratio_percent) {
  return format_fixed(value, 1) + " (" + format_fixed(ratio_percent, 1) +
         "%)";
}

/// Emits one measured-vs-paper block for a Table 1/2 style experiment.
inline void print_surplus_table(const std::string& title,
                                const std::string& size_label,
                                const std::vector<PaperRow>& paper,
                                const std::vector<ComparisonResult>& results) {
  TextTable table({size_label, "TPD", "TPD ex-auct", "PMD", "PMD ex-auct",
                   "source"});
  for (std::size_t row = 0; row < paper.size(); ++row) {
    const PaperRow& p = paper[row];
    const ComparisonResult& r = results[row];
    table.add_row({std::to_string(p.size),
                   measured_cell(r, "tpd", false),
                   measured_cell(r, "tpd", true),
                   measured_cell(r, "pmd", false),
                   measured_cell(r, "pmd", true), "measured"});
    table.add_row({std::to_string(p.size), paper_cell(p.tpd, p.tpd_ratio),
                   paper_cell(p.tpd_ex, p.tpd_ex_ratio),
                   paper_cell(p.pmd, p.pmd_ratio),
                   paper_cell(p.pmd_ex, p.pmd_ex_ratio), "paper"});
  }
  std::cout << "== " << title << " ==\n" << table << '\n';
}

}  // namespace fnda::bench
