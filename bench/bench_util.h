// Shared helpers for the table/figure reproduction binaries.
//
// Each bench prints the paper's reported numbers next to the measured
// ones so the reproduction quality is visible at a glance; EXPERIMENTS.md
// records a captured run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/experiment.h"
#include "sim/table.h"

namespace fnda::bench {

/// Paper row for Tables 1/2: surplus and (ratio) for four columns.
struct PaperRow {
  int size;  // n=m for Table 1, N for Table 2
  double tpd, tpd_ratio;
  double tpd_ex, tpd_ex_ratio;
  double pmd, pmd_ratio;
  double pmd_ex, pmd_ex_ratio;
};

inline std::string measured_cell(const ComparisonResult& result,
                                 const std::string& name, bool except) {
  const ProtocolSummary& summary = result.summary(name);
  const double value =
      except ? summary.except_auctioneer.mean() : summary.total.mean();
  const double ratio = except ? result.ratio_except_auctioneer(name)
                              : result.ratio_total(name);
  return format_with_ratio(value, ratio);
}

inline std::string paper_cell(double value, double ratio_percent) {
  return format_fixed(value, 1) + " (" + format_fixed(ratio_percent, 1) +
         "%)";
}

/// One benchmark record for the BENCH_*.json files.  The emitted document
/// follows the google-benchmark JSON layout (context block + benchmarks
/// array) so both BENCH files in the repo share one shape; records here
/// carry only the fields the repo's reports read, plus free-form
/// counters.
struct JsonBenchRecord {
  std::string name;
  double real_time_ns = 0.0;
  std::uint64_t iterations = 1;
  double items_per_second = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  /// Structured caveats about the measurement (e.g. the host had fewer
  /// CPUs than worker threads).  Emitted as a `"warnings": [...]` array
  /// so reports cannot mistake a compromised row for a clean one.
  std::vector<std::string> warnings;
};

/// Minimal JSON string escaping for warning text (quotes + backslashes +
/// control characters; warnings are ASCII diagnostics).
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// The library build flavour baked into this binary.  Stamped into the
/// context block AND every record: a single row pasted into a report must
/// carry its own provenance, because a debug-built measurement is not a
/// measurement.
inline const char* library_build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Git revision the binary was configured from (captured at CMake
/// configure time; "unknown" outside a work tree or for stale builds
/// whose configure predates the last commit).
inline const char* build_git_sha() {
#ifdef FNDA_GIT_SHA
  return FNDA_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Compiler family + full version string the binary was built with.
inline std::string compiler_version() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

inline void write_benchmark_json(std::ostream& os,
                                 const std::string& executable,
                                 const std::vector<JsonBenchRecord>& records) {
  char date[64] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm tm_buf{}; localtime_r(&now, &tm_buf) != nullptr) {
    std::strftime(date, sizeof date, "%FT%T%z", &tm_buf);
  }
  // Per-record warning lists with build-flavour caveats appended; the
  // distinct set (first-seen order) is also surfaced once in the context
  // block so a reader skimming the document head sees every caveat
  // without scanning the records.  Records keep their own tags: a row
  // pasted into a report still carries its provenance.
  std::vector<std::vector<std::string>> record_warnings(records.size());
  std::vector<std::string> distinct_warnings;
  for (std::size_t i = 0; i < records.size(); ++i) {
    record_warnings[i] = records[i].warnings;
#ifndef NDEBUG
    record_warnings[i].push_back(
        "library built without NDEBUG (debug): timings are not "
        "representative, regenerate from a Release build");
#endif
    for (const std::string& warning : record_warnings[i]) {
      if (std::find(distinct_warnings.begin(), distinct_warnings.end(),
                    warning) == distinct_warnings.end()) {
        distinct_warnings.push_back(warning);
      }
    }
  }
  os << "{\n  \"context\": {\n"
     << "    \"date\": \"" << date << "\",\n"
     << "    \"executable\": \"" << executable << "\",\n"
     << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
     << "    \"library_build_type\": \"" << library_build_type() << "\",\n"
     << "    \"git_sha\": \"" << build_git_sha() << "\",\n"
     << "    \"compiler\": \"" << json_escape(compiler_version()) << '"';
  if (!distinct_warnings.empty()) {
    os << ",\n    \"warnings\": [";
    for (std::size_t w = 0; w < distinct_warnings.size(); ++w) {
      os << (w > 0 ? ", " : "") << '"' << json_escape(distinct_warnings[w])
         << '"';
    }
    os << ']';
  }
  os << "\n  },\n  \"benchmarks\": [\n";
  os << std::setprecision(15);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonBenchRecord& r = records[i];
    os << "    {\n"
       << "      \"name\": \"" << r.name << "\",\n"
       << "      \"run_type\": \"iteration\",\n"
       << "      \"iterations\": " << r.iterations << ",\n"
       << "      \"real_time\": " << r.real_time_ns << ",\n"
       << "      \"time_unit\": \"ns\",\n"
       << "      \"items_per_second\": " << r.items_per_second;
    // Every record repeats num_cpus and the build flavour so a single row
    // pasted into a report still carries the host and build shape (the
    // context block is easy to lose).
    os << ",\n      \"num_cpus\": " << std::thread::hardware_concurrency();
    os << ",\n      \"library_build_type\": \"" << library_build_type()
       << '"';
    os << ",\n      \"git_sha\": \"" << build_git_sha() << '"';
    os << ",\n      \"compiler\": \"" << json_escape(compiler_version())
       << '"';
    for (const auto& [key, value] : r.counters) {
      os << ",\n      \"" << key << "\": " << value;
    }
    // A debug build invalidates every timing in the file; say so on every
    // record, in the same structured shape as measurement caveats.
    const std::vector<std::string>& warnings = record_warnings[i];
    if (!warnings.empty()) {
      os << ",\n      \"warnings\": [";
      for (std::size_t w = 0; w < warnings.size(); ++w) {
        os << (w > 0 ? ", " : "") << '"' << json_escape(warnings[w]) << '"';
      }
      os << ']';
    }
    os << "\n    }" << (i + 1 < records.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

inline bool write_benchmark_json_file(
    const std::string& path, const std::string& executable,
    const std::vector<JsonBenchRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  write_benchmark_json(out, executable, records);
  return static_cast<bool>(out);
}

/// Emits one measured-vs-paper block for a Table 1/2 style experiment.
inline void print_surplus_table(const std::string& title,
                                const std::string& size_label,
                                const std::vector<PaperRow>& paper,
                                const std::vector<ComparisonResult>& results) {
  TextTable table({size_label, "TPD", "TPD ex-auct", "PMD", "PMD ex-auct",
                   "source"});
  for (std::size_t row = 0; row < paper.size(); ++row) {
    const PaperRow& p = paper[row];
    const ComparisonResult& r = results[row];
    table.add_row({std::to_string(p.size),
                   measured_cell(r, "tpd", false),
                   measured_cell(r, "tpd", true),
                   measured_cell(r, "pmd", false),
                   measured_cell(r, "pmd", true), "measured"});
    table.add_row({std::to_string(p.size), paper_cell(p.tpd, p.tpd_ratio),
                   paper_cell(p.tpd_ex, p.tpd_ex_ratio),
                   paper_cell(p.pmd, p.pmd_ratio),
                   paper_cell(p.pmd_ex, p.pmd_ex_ratio), "paper"});
  }
  std::cout << "== " << title << " ==\n" << table << '\n';
}

}  // namespace fnda::bench
