// Live-exchange adversarial co-simulation bench: the live axis of
// bench/robustness_attacks (DESIGN.md §2j).  False-name attackers and
// honest ZI traders share a running MultiServerExchange; the attackers
// re-plan via warm-start find_best_deviation against the previous
// round's book on a background pool that overlaps the round's clearing.
// One run emits BOTH metric families in one JSON record:
//
//   mechanism level — planned manipulation gain, attack success rate
//   (profitable searches / searches), realized-vs-efficient surplus
//   ratio, warm-hit/seeded/cold split, shed + withdrawal counts;
//
//   systems level — p50/p99 round wall latency, summed search wall time,
//   session ns/message, shed rate.
//
// Two hard gates:
//   --assert-warm-speedup X   summed per-search wall time of the cold
//                             session (warm off) over the warm session
//                             must be >= X (best-of---reps per arm);
//   --assert-ns-per-message N an attacker-free session of the same
//                             harness (the honest hot path) must clear
//                             bids at <= N ns/message.
//
// The exchange output digest is printed so a bench run can be checked
// against the pinned determinism goldens in attack_scheduler_test.
//
// Usage: robustness_live [--honest N] [--attackers A] [--rounds R]
//                        [--shards S] [--threads T] [--search-threads P]
//                        [--search-budget B] [--grid-points G]
//                        [--max-declarations D] [--seed S] [--reps N]
//                        [--warm 0|1] [--json PATH]
//                        [--assert-warm-speedup X]
//                        [--assert-ns-per-message NS]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "market/live_attack.h"
#include "protocols/pmd.h"
#include "protocols/tpd.h"

namespace {

using namespace fnda;

double percentile_ns(std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t index = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return static_cast<double>(samples[index]);
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--honest N] [--attackers A] [--rounds R] [--shards S]\n"
               "       [--threads T] [--search-threads P] [--search-budget B]\n"
               "       [--grid-points G] [--max-declarations D] [--seed S]\n"
               "       [--reps N] [--warm 0|1] [--protocol tpd|pmd]\n"
               "       [--json PATH] [--assert-warm-speedup X]\n"
               "       [--assert-ns-per-message NS]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LiveAttackConfig config;
  config.honest = 200;
  config.attackers = 16;
  config.rounds = 6;
  config.shards = 2;
  config.threads = 1;
  config.search_threads = 1;
  std::size_t reps = 3;
  double assert_warm_speedup = -1.0;    // < 0 disables the gate
  double assert_ns_per_message = -1.0;  // < 0 disables the gate
  std::string json_path;
  std::string protocol_name = "tpd";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--honest" && (value = next())) {
      config.honest = std::stoull(value);
    } else if (arg == "--attackers" && (value = next())) {
      config.attackers = std::stoull(value);
    } else if (arg == "--rounds" && (value = next())) {
      config.rounds = std::max<std::size_t>(2, std::stoull(value));
    } else if (arg == "--shards" && (value = next())) {
      config.shards = std::max<std::size_t>(1, std::stoull(value));
    } else if (arg == "--threads" && (value = next())) {
      config.threads = std::stoull(value);
    } else if (arg == "--search-threads" && (value = next())) {
      config.search_threads = std::stoull(value);
    } else if (arg == "--search-budget" && (value = next())) {
      config.search_budget = std::stoull(value);
    } else if (arg == "--grid-points" && (value = next())) {
      config.grid_points = std::stoull(value);
    } else if (arg == "--max-declarations" && (value = next())) {
      config.max_declarations = std::stoull(value);
    } else if (arg == "--seed" && (value = next())) {
      config.seed = std::stoull(value);
    } else if (arg == "--warm" && (value = next())) {
      config.warm = std::stoull(value) != 0;
    } else if (arg == "--protocol" && (value = next())) {
      protocol_name = value;
    } else if (arg == "--reps" && (value = next())) {
      reps = std::max<std::size_t>(1, std::stoull(value));
    } else if (arg == "--json" && (value = next())) {
      json_path = value;
    } else if (arg == "--assert-warm-speedup" && (value = next())) {
      assert_warm_speedup = std::stod(value);
    } else if (arg == "--assert-ns-per-message" && (value = next())) {
      assert_ns_per_message = std::stod(value);
    } else {
      return usage(argv[0]);
    }
  }

  // TPD is the paper's false-name-proof protocol (attack success rate
  // should stay at zero); PMD is the manipulable baseline the gain
  // metrics light up on.
  const TpdProtocol tpd(Money::from_units(50));
  const PmdProtocol pmd;
  const DoubleAuctionProtocol* chosen = nullptr;
  if (protocol_name == "tpd") {
    chosen = &tpd;
  } else if (protocol_name == "pmd") {
    chosen = &pmd;
  } else {
    std::cerr << "unknown --protocol " << protocol_name
              << " (expected tpd or pmd)\n";
    return 2;
  }
  const DoubleAuctionProtocol& protocol = *chosen;
  std::vector<bench::JsonBenchRecord> records;
  const std::string size_suffix = "/" + protocol_name + "/" +
                                  std::to_string(config.honest) + "+" +
                                  std::to_string(config.attackers);

  // Headline co-simulation session (warm per --warm).  The exchange
  // output is deterministic, so one run defines every mechanism-level
  // number; best-of---reps only steadies the wall-clock fields.
  LiveAttackResult session = run_live_attack_session(protocol, config);
  for (std::size_t rep = 1; rep < reps; ++rep) {
    LiveAttackResult sample = run_live_attack_session(protocol, config);
    if (sample.total_wall_ns < session.total_wall_ns) {
      session = std::move(sample);
    }
  }

  const double searches =
      static_cast<double>(std::max<std::uint64_t>(session.attack.searches, 1));
  const double success_rate =
      static_cast<double>(session.profitable_searches) / searches;
  const double shed_rate =
      static_cast<double>(session.attack.shed) /
      static_cast<double>(std::max<std::uint64_t>(
          session.attack.searches + session.attack.shed, 1));
  const double round_p50 = percentile_ns(session.round_wall_ns, 0.50);
  const double round_p99 = percentile_ns(session.round_wall_ns, 0.99);
  const double session_ns_per_message =
      static_cast<double>(session.total_wall_ns) /
      static_cast<double>(std::max<std::size_t>(session.bus.sent, 1));

  records.push_back(
      {"live_attack/session" + size_suffix,
       static_cast<double>(session.total_wall_ns),
       1,
       static_cast<double>(session.bus.sent) /
           (static_cast<double>(session.total_wall_ns) / 1e9),
       {// mechanism level
        {"planned_gain_total", session.planned_gain_total},
        {"attack_success_rate", success_rate},
        {"efficiency_ratio", session.efficiency_ratio},
        {"searches", searches},
        {"warm_hits", static_cast<double>(session.attack.warm_hits)},
        {"warm_seeded", static_cast<double>(session.attack.warm_seeded)},
        {"cold_runs", static_cast<double>(session.attack.cold_runs)},
        {"withdrawals", static_cast<double>(session.attack.withdrawals)},
        // systems level
        {"round_p50_ns", round_p50},
        {"round_p99_ns", round_p99},
        {"search_wall_ns", static_cast<double>(session.search_wall_ns)},
        {"ns_per_message", session_ns_per_message},
        {"shed_rate", shed_rate},
        {"trades", static_cast<double>(session.trades)},
        {"messages", static_cast<double>(session.bus.sent)},
        {"shards", static_cast<double>(session.shards)},
        {"threads", static_cast<double>(session.threads)},
        {"search_threads", static_cast<double>(session.search_threads)},
        {"warm", config.warm ? 1.0 : 0.0}}});
  std::cout << "live session:     " << session.honest << " honest + "
            << session.attackers << " attackers, " << session.rounds
            << " rounds, " << session.trades << " trades, digest 0x"
            << std::hex << session.digest << std::dec << '\n'
            << "  mechanism:      planned gain " << session.planned_gain_total
            << ", success rate " << success_rate << ", efficiency "
            << session.efficiency_ratio << ", warm "
            << session.attack.warm_hits << " hit / "
            << session.attack.warm_seeded << " seeded / "
            << session.attack.cold_runs << " cold, withdrawals "
            << session.attack.withdrawals << '\n'
            << "  systems:        round p50 " << round_p50 / 1e6
            << " ms, p99 " << round_p99 / 1e6 << " ms, search wall "
            << static_cast<double>(session.search_wall_ns) / 1e6
            << " ms, shed rate " << shed_rate << ", "
            << session_ns_per_message << " ns/message\n";

  // Warm-start speedup: identical sessions, warm on vs off; compare the
  // SUMMED per-search wall time (the only field the toggle may change —
  // the exchange output is bit-identical, which the digest check below
  // enforces on every bench run).  Best (minimum) per arm across reps.
  {
    LiveAttackConfig warm_config = config;
    warm_config.warm = true;
    LiveAttackConfig cold_config = config;
    cold_config.warm = false;
    std::uint64_t warm_ns = 0;
    std::uint64_t cold_ns = 0;
    std::uint64_t warm_digest = 0;
    std::uint64_t cold_digest = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // Interleave the arms so scheduler drift hits both equally.
      const LiveAttackResult warm =
          run_live_attack_session(protocol, warm_config);
      const LiveAttackResult cold =
          run_live_attack_session(protocol, cold_config);
      warm_ns = rep == 0 ? warm.search_wall_ns
                         : std::min(warm_ns, warm.search_wall_ns);
      cold_ns = rep == 0 ? cold.search_wall_ns
                         : std::min(cold_ns, cold.search_wall_ns);
      warm_digest = warm.digest;
      cold_digest = cold.digest;
    }
    if (warm_digest != cold_digest) {
      std::cerr << "FAIL: warm and cold sessions diverged (digest 0x"
                << std::hex << warm_digest << " vs 0x" << cold_digest
                << std::dec << "); warm-start is not output-preserving\n";
      return 1;
    }
    const double speedup = static_cast<double>(cold_ns) /
                           static_cast<double>(std::max<std::uint64_t>(
                               warm_ns, 1));
    records.push_back({"live_attack/warm_speedup" + size_suffix,
                       static_cast<double>(warm_ns),
                       1,
                       0.0,
                       {{"warm_search_ns", static_cast<double>(warm_ns)},
                        {"cold_search_ns", static_cast<double>(cold_ns)},
                        {"warm_speedup", speedup}}});
    std::cout << "warm speedup:     cold "
              << static_cast<double>(cold_ns) / 1e6 << " ms vs warm "
              << static_cast<double>(warm_ns) / 1e6 << " ms -> x" << speedup
              << " (best of " << reps << ", bit-identical output)\n";
    if (assert_warm_speedup >= 0.0 && speedup < assert_warm_speedup) {
      std::cerr << "warm-start speedup x" << speedup
                << " is below the asserted bound of x" << assert_warm_speedup
                << '\n';
      return 1;
    }
  }

  // Honest hot path: the same harness with zero attackers — what the
  // co-simulation machinery must not tax when it is not exercised.
  {
    LiveAttackConfig honest_config = config;
    honest_config.attackers = 0;
    LiveAttackResult honest = run_live_attack_session(protocol, honest_config);
    for (std::size_t rep = 1; rep < reps; ++rep) {
      LiveAttackResult sample =
          run_live_attack_session(protocol, honest_config);
      if (sample.total_wall_ns < honest.total_wall_ns) {
        honest = std::move(sample);
      }
    }
    const double honest_ns_per_message =
        static_cast<double>(honest.total_wall_ns) /
        static_cast<double>(std::max<std::size_t>(honest.bus.sent, 1));
    records.push_back(
        {"live_attack/honest_ns_per_message" + size_suffix,
         honest_ns_per_message,
         honest.bus.sent,
         1e9 / std::max(honest_ns_per_message, 1e-9),
         {{"messages", static_cast<double>(honest.bus.sent)},
          {"trades", static_cast<double>(honest.trades)}}});
    std::cout << "honest hot path:  " << honest_ns_per_message
              << " ns/message (" << honest.bus.sent << " messages, best of "
              << reps << ")\n";
    if (assert_ns_per_message >= 0.0 &&
        honest_ns_per_message > assert_ns_per_message) {
      std::cerr << "honest hot path " << honest_ns_per_message
                << " ns/message exceeds the asserted bound of "
                << assert_ns_per_message << " ns\n";
      return 1;
    }
  }

  if (!json_path.empty()) {
    if (!bench::write_benchmark_json_file(json_path, argv[0], records)) {
      std::cerr << "FAIL: cannot write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }
  return 0;
}
