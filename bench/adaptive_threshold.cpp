// Ablation: online threshold adaptation across trading rounds (the
// Section 8 "find the optimal threshold" future work, without knowing the
// value distribution in advance).
//
// A TPD auctioneer starts with a badly wrong threshold, observes each
// round's declared book (sunk information — one-shot bidders cannot
// profit by distorting it), and updates via the clearing-midpoint policy.
// Compared against (a) the oracle fixed threshold and (b) the stubborn
// initial threshold, on a market whose value distribution SHIFTS halfway
// through the day.
#include <iostream>

#include "common/statistics.h"
#include "core/surplus.h"
#include "protocols/tpd.h"
#include "sim/adaptive_threshold.h"
#include "sim/generators.h"
#include "sim/table.h"

int main() {
  using namespace fnda;

  constexpr std::size_t kRounds = 120;
  constexpr std::size_t kPerSide = 100;

  // Regime 1 (rounds 0-59): values U[0,100] (optimum r = 50).
  // Regime 2 (rounds 60-119): values U[40,140] (optimum r = 90).
  const ValueDistribution regime1{money(0), money(100), ValueDomain{}};
  const ValueDistribution regime2{money(40), money(140), ValueDomain{}};

  AdaptiveThresholdPolicy policy(money(15), 0.3);  // starts far off
  Rng rng(0xada9);

  RunningStats adaptive_ratio;
  RunningStats stubborn_ratio;
  RunningStats oracle_ratio;
  TextTable trace({"round", "adaptive r", "ratio adaptive", "ratio stubborn",
                   "ratio oracle"});

  for (std::size_t round = 0; round < kRounds; ++round) {
    const bool second_regime = round >= kRounds / 2;
    const ValueDistribution& values = second_regime ? regime2 : regime1;
    const Money oracle = second_regime ? money(90) : money(50);
    const InstanceGenerator gen =
        fixed_count_generator(kPerSide, kPerSide, values);
    const SingleUnitInstance instance = gen(rng);
    const InstantiatedMarket market = instantiate_truthful(instance);

    Rng pareto_rng = rng.split();
    const SortedBook sorted(market.book, pareto_rng);
    const double pareto = efficient_surplus(sorted);

    auto ratio_for = [&](Money threshold) {
      Rng clear_rng = rng.split();
      const Outcome outcome =
          TpdProtocol(threshold).clear(market.book, clear_rng);
      const SurplusReport surplus = realized_surplus(outcome, market.truth);
      return pareto > 0.0 ? surplus.total / pareto : 1.0;
    };

    const double adaptive = ratio_for(policy.current());
    const double stubborn = ratio_for(money(15));
    const double oracle_r = ratio_for(oracle);
    adaptive_ratio.add(adaptive);
    stubborn_ratio.add(stubborn);
    oracle_ratio.add(oracle_r);

    if (round % 20 == 0 || round == kRounds / 2 || round + 1 == kRounds) {
      trace.add_row({std::to_string(round),
                     format_fixed(policy.current().to_double(), 1),
                     format_fixed(100.0 * adaptive, 1) + "%",
                     format_fixed(100.0 * stubborn, 1) + "%",
                     format_fixed(100.0 * oracle_r, 1) + "%"});
    }

    // Learn from the completed round (declared == true values: truthful
    // bidding is dominant under TPD regardless of r).
    policy.observe(sorted);
  }

  std::cout << "== Adaptive threshold across a regime shift "
               "(U[0,100] -> U[40,140] at round 60, n=m=100) ==\n";
  std::cout << trace << '\n';
  TextTable summary({"policy", "mean efficiency over the day"});
  summary.add_row({"adaptive (starts at 15)",
                   format_fixed(100.0 * adaptive_ratio.mean(), 2) + "%"});
  summary.add_row({"stubborn r = 15",
                   format_fixed(100.0 * stubborn_ratio.mean(), 2) + "%"});
  summary.add_row({"per-regime oracle",
                   format_fixed(100.0 * oracle_ratio.mean(), 2) + "%"});
  std::cout << summary
            << "\nThe adaptive auctioneer recovers from a bad initial "
               "guess and re-converges after the shift, approaching the "
               "oracle without ever knowing the distribution.\n";
  return 0;
}
