// Ablation C: clearing throughput microbenchmarks (google-benchmark).
//
// Clearing is O(n log n) in the book size for every protocol here; this
// bench pins that and surfaces the constant factors (TPD's rank counting
// vs PMD's k search vs the multi-unit GVA payments).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"

#include "core/instance.h"
#include "protocols/efficient.h"
#include "protocols/kda.h"
#include "protocols/pmd.h"
#include "protocols/random_threshold.h"
#include "protocols/tpd.h"
#include "protocols/tpd_multi.h"
#include "market/bus.h"
#include "market/zi_traders.h"
#include "sim/experiment.h"
#include "sim/generators.h"
#include "sim/threshold_search.h"

namespace {

using namespace fnda;

OrderBook make_book(std::size_t per_side, std::uint64_t seed) {
  Rng rng(seed);
  const SingleUnitInstance instance =
      fixed_count_generator(per_side, per_side)(rng);
  return instantiate_truthful(instance).book;
}

template <typename Protocol>
void clear_benchmark(benchmark::State& state, const Protocol& protocol) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  const OrderBook book = make_book(per_side, 42);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const Outcome outcome = protocol.clear(book, rng);
    benchmark::DoNotOptimize(outcome.trade_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * per_side));
}

void BM_TpdClear(benchmark::State& state) {
  clear_benchmark(state, TpdProtocol(money(50)));
}
void BM_PmdClear(benchmark::State& state) {
  clear_benchmark(state, PmdProtocol());
}
void BM_EfficientClear(benchmark::State& state) {
  clear_benchmark(state, EfficientClearing());
}
void BM_RandomThresholdClear(benchmark::State& state) {
  clear_benchmark(state, RandomThresholdProtocol(money(50)));
}

void BM_TpdMultiClear(benchmark::State& state) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  Rng build_rng(7);
  MultiUnitBook book;
  for (std::size_t p = 0; p < per_side; ++p) {
    auto draw = [&build_rng] {
      std::vector<Money> values;
      for (std::size_t u = 0, n = 1 + build_rng.below(4); u < n; ++u) {
        values.push_back(build_rng.uniform_money(Money::from_units(0),
                                                 Money::from_units(100)));
      }
      std::sort(values.begin(), values.end(),
                [](Money a, Money b) { return a > b; });
      return values;
    };
    book.add_buyer(IdentityId{p}, draw());
    book.add_seller(IdentityId{1'000'000 + p}, draw());
  }
  const TpdMultiUnitProtocol protocol(money(50));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const MultiUnitOutcome outcome = protocol.clear(book, rng);
    benchmark::DoNotOptimize(outcome.units_traded());
  }
}

/// The Table-1 inner loop, old style: P = 4 protocols each re-rank the
/// same book before clearing (one sort per protocol per instance).
/// Baseline for BM_SharedSortClear; items are protocol-clears x book size
/// in both, so items/sec ratios compare directly.
void BM_LegacyFourProtocolClear(benchmark::State& state) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  const OrderBook book = make_book(per_side, 42);
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const EfficientClearing efficient;
  const KDoubleAuction kda(0.5);
  const std::vector<const DoubleAuctionProtocol*> protocols = {
      &tpd, &pmd, &efficient, &kda};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    for (const DoubleAuctionProtocol* protocol : protocols) {
      Rng rng(seed);  // common random numbers across protocols
      const Outcome outcome = protocol->clear(book, rng);
      benchmark::DoNotOptimize(outcome.trade_count());
    }
    ++seed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(protocols.size()) *
                          static_cast<std::int64_t>(2 * per_side));
}

/// The sort-once fast path: rank the book ONCE per instance (reusing the
/// scratch SortedBook's buffers) and hand the shared ranking to every
/// protocol's clear_sorted.
void BM_SharedSortClear(benchmark::State& state) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  const OrderBook book = make_book(per_side, 42);
  const TpdProtocol tpd(money(50));
  const PmdProtocol pmd;
  const EfficientClearing efficient;
  const KDoubleAuction kda(0.5);
  const std::vector<const DoubleAuctionProtocol*> protocols = {
      &tpd, &pmd, &efficient, &kda};
  SortedBook scratch;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng sort_rng(seed);
    scratch.rebuild(book, sort_rng);
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      Rng clear_rng(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
      const Outcome outcome = protocols[p]->clear_sorted(scratch, clear_rng);
      benchmark::DoNotOptimize(outcome.trade_count());
    }
    ++seed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(protocols.size()) *
                          static_cast<std::int64_t>(2 * per_side));
}

/// Figure-1 coarse sweep, old style: 21 TpdProtocol instances pushed
/// through run_comparison on the legacy per-protocol-sort path (the
/// original pipeline).  Items are threshold-evaluations (21 x instances)
/// in all three Figure1Sweep benches.
void figure1_sweep_comparison(benchmark::State& state, bool shared_sort) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kInstances = 200;
  std::vector<std::unique_ptr<TpdProtocol>> protocols;
  std::vector<const DoubleAuctionProtocol*> pointers;
  for (int r = 0; r <= 100; r += 5) {
    protocols.push_back(std::make_unique<TpdProtocol>(money(r)));
    pointers.push_back(protocols.back().get());
  }
  const InstanceGenerator gen = fixed_count_generator(per_side, per_side);
  ExperimentConfig config;
  config.instances = kInstances;
  config.seed = 31337;
  config.shared_sort = shared_sort;
  for (auto _ : state) {
    const ComparisonResult result = run_comparison(gen, pointers, config);
    benchmark::DoNotOptimize(result.pareto.mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pointers.size()) *
                          static_cast<std::int64_t>(kInstances));
}

void BM_Figure1SweepLegacy(benchmark::State& state) {
  figure1_sweep_comparison(state, /*shared_sort=*/false);
}
void BM_Figure1SweepShared(benchmark::State& state) {
  figure1_sweep_comparison(state, /*shared_sort=*/true);
}

/// Figure-1 coarse sweep through the incremental kernel: each instance is
/// ranked and prefix-summed once, then every threshold costs two binary
/// searches (O(N(n log n + T log n)) total).
void BM_Figure1SweepKernel(benchmark::State& state) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kInstances = 200;
  std::vector<Money> thresholds;
  for (int r = 0; r <= 100; r += 5) thresholds.push_back(money(r));
  const InstanceGenerator gen = fixed_count_generator(per_side, per_side);
  for (auto _ : state) {
    const std::vector<TpdSweepBook> books =
        prepare_tpd_sweep(gen, kInstances, 31337);
    for (Money r : thresholds) {
      benchmark::DoNotOptimize(
          mean_tpd_objective(books, r, ThresholdObjective::kTotalSurplus));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(thresholds.size()) *
                          static_cast<std::int64_t>(kInstances));
}

void BM_SortedBookConstruction(benchmark::State& state) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  const OrderBook book = make_book(per_side, 43);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const SortedBook sorted(book, rng);
    benchmark::DoNotOptimize(sorted.efficient_trade_count());
  }
}

void BM_EventQueue(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    std::size_t fired = 0;
    for (std::size_t e = 0; e < events; ++e) {
      queue.schedule_at(SimTime{static_cast<std::int64_t>((e * 7919) % events)},
                        [&fired] { ++fired; });
    }
    queue.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}

class CountingEndpoint final : public Endpoint {
 public:
  void on_message(const Envelope&) override { ++count; }
  std::size_t count = 0;
};

void BM_MessageBus(benchmark::State& state) {
  const auto messages = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    BusConfig config;
    config.jitter = SimTime{100};
    MessageBus bus(queue, config, Rng(1));
    CountingEndpoint sink;
    bus.attach("sink", sink);
    for (std::size_t m = 0; m < messages; ++m) {
      bus.send("src", "sink", RoundClosedMsg{});
    }
    queue.run();
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages));
}

void BM_CdaZiSession(benchmark::State& state) {
  const auto per_side = static_cast<std::size_t>(state.range(0));
  Rng build(9);
  const SingleUnitInstance instance =
      fixed_count_generator(per_side, per_side)(build);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const ZiSessionResult result = run_zi_session(instance, rng);
    benchmark::DoNotOptimize(result.trades);
  }
}

}  // namespace

BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(100000);
BENCHMARK(BM_MessageBus)->Arg(1000)->Arg(100000);
BENCHMARK(BM_CdaZiSession)->Arg(10)->Arg(100);
BENCHMARK(BM_TpdClear)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_PmdClear)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_EfficientClear)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_RandomThresholdClear)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_TpdMultiClear)->Arg(10)->Arg(100)->Arg(500);
BENCHMARK(BM_SortedBookConstruction)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_LegacyFourProtocolClear)->Arg(1000)->Arg(4000);
BENCHMARK(BM_SharedSortClear)->Arg(1000)->Arg(4000);
BENCHMARK(BM_Figure1SweepLegacy)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Figure1SweepShared)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Figure1SweepKernel)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Same provenance keys as the JsonBenchRecord writers, surfaced through
  // google-benchmark's context block (its records inherit the context).
  benchmark::AddCustomContext("git_sha", fnda::bench::build_git_sha());
  // google-benchmark emits its own "library_build_type" (the benchmark
  // library's flavour); prefix ours to keep the keys distinct.
  benchmark::AddCustomContext("fnda_build_type",
                              fnda::bench::library_build_type());
  benchmark::AddCustomContext("compiler", fnda::bench::compiler_version());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
