// Ablation B (Section 8 "future work"): finding the optimal threshold
// price.  Runs the Monte-Carlo optimizer on several workloads and shows
// how the auctioneer's revenue share grows as the threshold leaves the
// optimum — the paper's stated downside of a badly chosen r.
#include <iostream>

#include "protocols/tpd.h"
#include "sim/experiment.h"
#include "sim/table.h"
#include "sim/threshold_search.h"

int main() {
  using namespace fnda;

  std::cout << "== Optimal threshold search (golden-section over "
               "Monte-Carlo expected surplus) ==\n";
  TextTable table({"workload", "objective", "best r", "E[surplus] at best",
                   "expected optimum"});

  struct Workload {
    const char* name;
    InstanceGenerator generator;
    const char* expected;
  };
  const Workload workloads[] = {
      {"n=m=50, U[0,100]", fixed_count_generator(50, 50), "~50"},
      {"n=m=500, U[0,100]", fixed_count_generator(500, 500), "~50"},
      {"B(100,0.5), U[0,100]", binomial_count_generator(100), "~50"},
      {"n=m=50, U[20,80]",
       fixed_count_generator(
           50, 50, ValueDistribution{money(20), money(80), ValueDomain{}}),
       "~50"},
      {"n=m=50, U[0,40]",
       fixed_count_generator(
           50, 50, ValueDistribution{money(0), money(40), ValueDomain{}}),
       "~20"},
  };

  for (const Workload& workload : workloads) {
    for (ThresholdObjective objective :
         {ThresholdObjective::kTotalSurplus,
          ThresholdObjective::kSurplusExceptAuctioneer}) {
      ThresholdSearchConfig config;
      config.objective = objective;
      config.instances_per_eval = 300;
      config.coarse_points = 21;
      const ThresholdSearchResult result =
          optimize_threshold(workload.generator, config);
      table.add_row({workload.name,
                     objective == ThresholdObjective::kTotalSurplus
                         ? "total"
                         : "ex-auctioneer",
                     format_fixed(result.best_threshold.to_double(), 2),
                     format_fixed(result.best_value, 1), workload.expected});
    }
  }
  std::cout << table << '\n';

  std::cout << "== Auctioneer revenue share vs threshold (n=m=200) ==\n";
  TextTable revenue({"threshold", "auctioneer share of TPD surplus"});
  const InstanceGenerator gen = fixed_count_generator(200, 200);
  for (int r = 20; r <= 80; r += 10) {
    const double total = expected_tpd_surplus(
        gen, money(r), ThresholdObjective::kTotalSurplus, 300, 99);
    const double except = expected_tpd_surplus(
        gen, money(r), ThresholdObjective::kSurplusExceptAuctioneer, 300, 99);
    revenue.add_row({std::to_string(r),
                     format_fixed(100.0 * (total - except) / total, 2) + "%"});
  }
  std::cout << revenue
            << "\n(paper: < 4% of the Pareto surplus at the optimum, "
               "growing roughly linearly as r moves away)\n";

  std::cout << "\n== Correlated values (paper future work): cost of a "
               "fixed threshold as correlation rises ==\n";
  TextTable corr({"rho", "best fixed r", "E[surplus] fixed",
                  "E[Pareto]", "fixed-threshold efficiency"});
  for (double rho : {0.0, 0.3, 0.6, 0.9}) {
    const InstanceGenerator gen = correlated_value_generator(100, 100, rho);
    ThresholdSearchConfig config;
    config.instances_per_eval = 300;
    config.coarse_points = 21;
    const ThresholdSearchResult best = optimize_threshold(gen, config);

    // Pareto reference on the same stream.
    ExperimentConfig pareto_config;
    pareto_config.instances = 300;
    pareto_config.seed = config.seed;
    const TpdProtocol probe(best.best_threshold);
    const ComparisonResult reference =
        run_comparison(gen, {&probe}, pareto_config);

    corr.add_row({format_fixed(rho, 1),
                  format_fixed(best.best_threshold.to_double(), 1),
                  format_fixed(best.best_value, 1),
                  format_fixed(reference.pareto.mean(), 1),
                  format_fixed(100.0 * best.best_value /
                                   reference.pareto.mean(),
                               1) + "%"});
  }
  std::cout << corr
            << "\nWith correlated values the clearing region moves with "
               "the common component each round, so even the best FIXED "
               "threshold leaves surplus behind — the adaptive policy "
               "(bench/adaptive_threshold) is the remedy.\n";
  return 0;
}
