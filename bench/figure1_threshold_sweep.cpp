// Reproduces Figure 1: social surplus of TPD at n = m = 500 as the
// threshold price sweeps [0, 100], both including and excluding the
// auctioneer, as fractions of the Pareto-efficient surplus.
//
// The paper plots two curves; this bench prints the series (CSV-ready) and
// an ASCII rendering.  Expected shape: both curves peak at r = 50; the
// total-surplus curve is flat near the peak while the except-auctioneer
// curve falls off roughly linearly as |r - 50| grows.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "protocols/tpd.h"
#include "sim/experiment.h"
#include "sim/table.h"
#include "sim/threshold_search.h"

int main() {
  using namespace fnda;

  constexpr std::size_t kParticipants = 500;
  constexpr int kStep = 5;

  // One pass over the instances evaluates every threshold (common random
  // numbers: all thresholds see identical books).
  std::vector<std::unique_ptr<TpdProtocol>> protocols;
  std::vector<const DoubleAuctionProtocol*> pointers;
  std::vector<int> thresholds;
  for (int r = 0; r <= 100; r += kStep) {
    thresholds.push_back(r);
    protocols.push_back(std::make_unique<TpdProtocol>(money(r)));
    pointers.push_back(protocols.back().get());
  }

  ExperimentConfig config;
  config.instances = 1000;
  config.seed = 31337;
  const ComparisonResult result = run_comparison(
      fixed_count_generator(kParticipants, kParticipants), pointers, config);

  std::cout << "== Figure 1: TPD surplus vs threshold price "
               "(n = m = 500, U[0,100], 1000 instances) ==\n";
  TextTable table({"threshold", "surplus", "ratio", "surplus ex-auct",
                   "ratio ex-auct", "auctioneer"});
  double best_total = 0.0;
  int best_r = -1;
  for (std::size_t p = 0; p < pointers.size(); ++p) {
    const ProtocolSummary& summary = result.protocols[p];
    const double total = summary.total.mean();
    const double except = summary.except_auctioneer.mean();
    const double pareto = result.pareto.mean();
    if (total > best_total) {
      best_total = total;
      best_r = thresholds[p];
    }
    table.add_row({std::to_string(thresholds[p]), format_fixed(total, 1),
                   format_fixed(100.0 * total / pareto, 1) + "%",
                   format_fixed(except, 1),
                   format_fixed(100.0 * except / pareto, 1) + "%",
                   format_fixed(summary.auctioneer.mean(), 1)});
  }
  std::cout << table << '\n';
  std::cout << "Pareto-efficient surplus: "
            << format_fixed(result.pareto.mean(), 1) << '\n';
  std::cout << "Peak total surplus at threshold r = " << best_r
            << " (paper: optimum at r = 50)\n\n";

  // ASCII rendering of the two curves (paper Figure 1).
  std::cout << "ratio of Pareto surplus (#: total, o: except auctioneer)\n";
  for (std::size_t p = 0; p < pointers.size(); ++p) {
    const double total_ratio =
        result.protocols[p].total.mean() / result.pareto.mean();
    const double except_ratio =
        result.protocols[p].except_auctioneer.mean() / result.pareto.mean();
    const int total_col = static_cast<int>(total_ratio * 60.0);
    const int except_col = static_cast<int>(except_ratio * 60.0);
    std::string line(61, ' ');
    line[static_cast<std::size_t>(std::max(0, except_col))] = 'o';
    line[static_cast<std::size_t>(std::max(0, total_col))] = '#';
    std::cout << (thresholds[p] < 10 ? "  " : thresholds[p] < 100 ? " " : "")
              << thresholds[p] << " |" << line << "|\n";
  }

  // Timing: the same coarse sweep (21 thresholds x 200 instances) through
  // three pipelines.  "legacy" re-sorts per protocol (the original
  // pipeline), "shared" sorts once per instance and fans out clear_sorted,
  // "kernel" ranks + prefix-sums once per instance and answers each
  // threshold with two binary searches.  All three agree on the curve
  // (the sim tests check exactness); only the work differs.
  {
    std::cout << "\n== Sweep timing: 21 thresholds x 200 instances, n = m = "
              << kParticipants << " ==\n";
    const InstanceGenerator gen =
        fixed_count_generator(kParticipants, kParticipants);
    ExperimentConfig sweep_config;
    sweep_config.instances = 200;
    sweep_config.seed = 31337;
    auto time_ms = [](auto&& body) {
      const auto start = std::chrono::steady_clock::now();
      body();
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(stop - start).count();
    };

    sweep_config.shared_sort = false;
    const double legacy_ms = time_ms([&] {
      const ComparisonResult r = run_comparison(gen, pointers, sweep_config);
      volatile double sink = r.pareto.mean();
      (void)sink;
    });
    sweep_config.shared_sort = true;
    const double shared_ms = time_ms([&] {
      const ComparisonResult r = run_comparison(gen, pointers, sweep_config);
      volatile double sink = r.pareto.mean();
      (void)sink;
    });
    const double kernel_ms = time_ms([&] {
      const std::vector<TpdSweepBook> books =
          prepare_tpd_sweep(gen, 200, 31337);
      double sink = 0.0;
      for (int r = 0; r <= 100; r += kStep) {
        sink += mean_tpd_objective(books, money(r),
                                   ThresholdObjective::kTotalSurplus);
      }
      volatile double keep = sink;
      (void)keep;
    });
    std::cout << "legacy (per-protocol sort): " << format_fixed(legacy_ms, 1)
              << " ms\n"
              << "shared sort-once:           " << format_fixed(shared_ms, 1)
              << " ms  (" << format_fixed(legacy_ms / shared_ms, 1) << "x)\n"
              << "sweep kernel:               " << format_fixed(kernel_ms, 1)
              << " ms  (" << format_fixed(legacy_ms / kernel_ms, 1) << "x)\n";
  }
  return 0;
}
